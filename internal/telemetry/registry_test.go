package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("stream_placed_total")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if reg.Counter("stream_placed_total") != c {
		t.Fatal("Counter did not return the same instance")
	}
	g := reg.Gauge("residual_v_bias")
	g.Set(0.07)
	if got := g.Value(); got != 0.07 {
		t.Fatalf("gauge = %v, want 0.07", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := reg.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry export: err=%v out=%q", err, buf.String())
	}
}

func TestSnapshotExpvarCompatible(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(2)
	reg.Gauge("b").Set(1.5)
	snap := reg.Snapshot()
	if snap["a_total"] != int64(2) || snap["b"] != 1.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	// The snapshot must be JSON-encodable, since expvar serves it as JSON.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total").Add(7)
	reg.Counter("a_total").Add(1)
	reg.Gauge("m.gauge").Set(2.5) // '.' must be sanitized
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE a_total counter\n" +
		"a_total 1\n" +
		"# TYPE m_gauge gauge\n" +
		"m_gauge 2.5\n" +
		"# TYPE z_total counter\n" +
		"z_total 7\n"
	if buf.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name":     "ok_name",
		"dots.and-da": "dots_and_da",
		"9lead":       "_lead",
		"":            "_",
		"μs":          "_s",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("shared_gauge").Set(float64(j))
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(3)
	mux := DebugMux(reg)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 3") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "hits_total") {
		t.Fatalf("/debug/vars: code=%d body=%q", code, body)
	} else if !json.Valid([]byte(body)) {
		t.Fatalf("/debug/vars is not valid JSON: %q", body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and nil-safe: a nil *Counter (from a nil *Registry) is a
// no-op, so instrumented code never branches on "is telemetry on".
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. Like Counter it is concurrency- and
// nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of counters and gauges. Metric names
// should be Prometheus-style snake_case ("stream_placed_total"); invalid
// characters are sanitized at export time, not at update time.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSummaries digests every histogram, sorted by name — the
// deterministic-order view BENCH artifacts embed.
func (r *Registry) HistogramSummaries() []HistogramSummary {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	hs := make(map[string]*Histogram, len(names))
	for _, name := range names {
		hs[name] = r.histograms[name]
	}
	r.mu.RUnlock()
	out := make([]HistogramSummary, 0, len(names))
	for _, name := range names {
		s := hs[name].Summary()
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Snapshot returns every metric's current value keyed by name — the
// expvar-compatible view: publish it with
//
//	expvar.Publish("bpart", expvar.Func(func() any { return reg.Snapshot() }))
//
// Counters appear as int64, gauges as float64, histograms as their
// HistogramSummary digest.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		s := h.Summary()
		s.Name = name
		out[name] = s
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format, sorted by metric name:
//
//	# TYPE stream_placed_total counter
//	stream_placed_total 12345
//
// Histograms use the standard cumulative-bucket exposition (empty buckets
// elided; the cumulative counts still parse):
//
//	# TYPE superstep_time_us histogram
//	superstep_time_us_bucket{le="256"} 7
//	superstep_time_us_bucket{le="+Inf"} 9
//	superstep_time_us_sum 1893.2
//	superstep_time_us_count 9
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type metric struct {
		name, block string
	}
	r.mu.RLock()
	ms := make([]metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		n := sanitizeMetricName(name)
		ms = append(ms, metric{n, fmt.Sprintf("# TYPE %s counter\n%s %d\n", n, n, c.Value())})
	}
	for name, g := range r.gauges {
		n := sanitizeMetricName(name)
		ms = append(ms, metric{n, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", n, n, g.Value())})
	}
	for name, h := range r.histograms {
		n := sanitizeMetricName(name)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		uppers, counts := h.cumulative()
		var total int64
		for i, ub := range uppers {
			total = counts[i]
			if math.IsInf(ub, 1) {
				continue // folded into the +Inf line below
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, fmt.Sprintf("%g", ub), counts[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, total)
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count())
		ms = append(ms, metric{n, b.String()})
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if _, err := io.WriteString(w, m.block); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps a metric name onto the Prometheus alphabet
// [a-zA-Z0-9_:], replacing every other rune with '_'.
func sanitizeMetricName(name string) string {
	ok := func(i int, r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if ok(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and nil-safe: a nil *Counter (from a nil *Registry) is a
// no-op, so instrumented code never branches on "is telemetry on".
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. Like Counter it is concurrency- and
// nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of counters and gauges. Metric names
// should be Prometheus-style snake_case ("stream_placed_total"); invalid
// characters are sanitized at export time, not at update time.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric's current value keyed by name — the
// expvar-compatible view: publish it with
//
//	expvar.Publish("bpart", expvar.Func(func() any { return reg.Snapshot() }))
//
// Counters appear as int64, gauges as float64.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format, sorted by metric name:
//
//	# TYPE stream_placed_total counter
//	stream_placed_total 12345
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type metric struct {
		name, typ, value string
	}
	r.mu.RLock()
	ms := make([]metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		ms = append(ms, metric{sanitizeMetricName(name), "counter", fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range r.gauges {
		ms = append(ms, metric{sanitizeMetricName(name), "gauge", fmt.Sprintf("%g", g.Value())})
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps a metric name onto the Prometheus alphabet
// [a-zA-Z0-9_:], replacing every other rune with '_'.
func sanitizeMetricName(name string) string {
	ok := func(i int, r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if ok(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

package telemetry

import (
	"math"
	"sync"
)

// Histogram bucket layout: bucket i (1 ≤ i ≤ histSpan) holds observations
// in (2^(minExp+i-2), 2^(minExp+i-1)]; bucket 0 is the underflow bucket
// (v ≤ 2^(minExp-1), including zero and negatives) and the last bucket
// catches overflow. The range 2^-10 … 2^40 spans sub-nanosecond costs up to
// ~12 days of simulated microseconds, so in practice everything the repo
// observes lands in a real bucket.
const (
	histMinExp  = -10
	histMaxExp  = 40
	histSpan    = histMaxExp - histMinExp + 1
	histBuckets = histSpan + 2 // + underflow + overflow
)

// Histogram is a log-bucketed (powers of two) distribution metric. Like
// Counter and Gauge it is concurrency- and nil-safe: a nil *Histogram
// (from a nil *Registry) ignores observations. Observations are a mutex,
// an exponent extraction and an array increment — cheap enough for
// per-superstep and per-batch recording, which is the intended grain; do
// not put one inside a per-edge loop.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// histBucketIndex maps an observation to its bucket.
func histBucketIndex(v float64) int {
	if v <= math.Ldexp(1, histMinExp-1) { // ≤ lower edge of the first real bucket
		return 0
	}
	// Frexp gives v = frac·2^exp with frac in [0.5,1), so v ∈ (2^(exp-1), 2^exp]
	// exactly when frac < 1 — i.e. exp is already the ceiling exponent,
	// except for exact powers of two where frac == 0.5.
	frac, exp := math.Frexp(v)
	if frac == 0.5 {
		exp--
	}
	if exp > histMaxExp {
		return histBuckets - 1
	}
	return exp - histMinExp + 1
}

// histBucketUpper is the inclusive upper bound of bucket i (+Inf for the
// overflow bucket).
func histBucketUpper(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp-1)
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i-1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucketIndex(v)]++
	h.mu.Unlock()
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) by log-bucket
// interpolation: the rank's bucket is located by cumulative count, and the
// estimate is placed geometrically within it — est = lower·2^f where f is
// the rank's fraction through the bucket, matching the buckets' power-of-2
// spacing. The underflow and overflow buckets have no finite span to
// interpolate over, so they report their clamped edge instead. Estimates
// are clamped to the observed min/max, making p0 and p100 exact. A nil or
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.buckets {
		prev := cum
		cum += n
		if cum < rank {
			continue
		}
		var est float64
		if i == 0 || i == histBuckets-1 {
			// No finite lower (underflow) or upper (overflow) edge to
			// interpolate against; the min/max clamp below does the work.
			est = histBucketUpper(i)
		} else {
			// rank sits (rank-prev)/n of the way through (lower, upper],
			// and upper = 2·lower, so interpolate on the log scale.
			frac := float64(rank-prev) / float64(n)
			est = histBucketUpper(i-1) * math.Exp2(frac)
		}
		if est < h.min {
			est = h.min
		}
		if est > h.max {
			est = h.max
		}
		return est
	}
	return h.max
}

// HistogramSummary is a point-in-time digest of a histogram, the shape the
// BENCH artifacts persist.
type HistogramSummary struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram's current state. Name is left for the
// registry to fill.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSummary{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantileLocked(0.50),
		P90:   h.quantileLocked(0.90),
		P99:   h.quantileLocked(0.99),
	}
}

// cumulative returns the non-empty buckets as (upper bound, cumulative
// count) pairs — the Prometheus bucket series minus its empty entries.
func (h *Histogram) cumulative() (uppers []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		uppers = append(uppers, histBucketUpper(i))
		counts = append(counts, cum)
	}
	return uppers, counts
}

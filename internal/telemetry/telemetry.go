// Package telemetry is the repo's cross-cutting instrumentation layer: a
// structured tracer for phases and BSP supersteps, a counter/gauge registry
// with Prometheus-style and expvar-compatible exports, and an HTTP debug
// surface (pprof + metrics).
//
// The design goal is near-zero cost when disabled. The default tracer is a
// no-op whose Span/Event calls never allocate (empty-struct interface
// values are free); hot loops accumulate into local integers and publish
// once per phase; counters are single atomic adds and are nil-safe, so an
// uninstrumented code path pays one predictable branch.
//
// The paper's evaluation revolves around internal quantities — per-layer
// piece counts during combining (Fig 8/9), per-machine compute/comm/waiting
// per superstep (Figs 12/13) — and this package is how the pipeline exposes
// them without printf archaeology: BPart emits one span per combining
// layer, the streaming engine one span per stream with cap-hit counters,
// and the simulated cluster one span per superstep carrying the full
// IterationStats timing.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// attrKind discriminates Attr payloads so scalar attributes avoid the
// interface boxing an `any` field would force.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
	kindAny
)

// Attr is one key/value annotation on a span or event. Scalars are stored
// unboxed; Any covers structured payloads (e.g. per-machine slices).
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  int64
	flt  float64
	any  any
}

// String returns a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, num: int64(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: v} }

// Float returns a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, flt: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.num = 1
	}
	return a
}

// Any returns an attribute holding an arbitrary JSON-encodable value, such
// as a per-machine timing slice. It boxes; keep it off hot paths.
func Any(key string, v any) Attr { return Attr{Key: key, kind: kindAny, any: v} }

// Value returns the attribute's payload as an interface value.
func (a Attr) Value() any {
	switch a.kind {
	case kindString:
		return a.str
	case kindInt:
		return a.num
	case kindFloat:
		return a.flt
	case kindBool:
		return a.num != 0
	default:
		return a.any
	}
}

// Record is one emitted trace record: an instantaneous event or a closed
// span with its duration.
type Record struct {
	Time  time.Time
	Span  bool // false = instantaneous event
	Name  string
	Dur   time.Duration // spans only
	Attrs []Attr
}

// Attr returns the value of the named attribute, or nil.
func (r *Record) Attr(key string) any {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value()
		}
	}
	return nil
}

// Tracer receives structured spans and events. Implementations must be
// safe for concurrent use.
type Tracer interface {
	// Enabled reports whether records are actually recorded. Hot paths
	// may use it to skip attribute assembly entirely.
	Enabled() bool
	// Span opens a named span; the returned Span must be Ended exactly
	// once. Spans may be open concurrently from multiple goroutines.
	Span(name string, attrs ...Attr) Span
	// Event records an instantaneous event.
	Event(name string, attrs ...Attr)
}

// Span is an open trace span.
type Span interface {
	// Annotate attaches attributes before End.
	Annotate(attrs ...Attr)
	// End closes the span, recording its wall-clock duration.
	End(attrs ...Attr)
}

// nopTracer is the zero-overhead default: Span returns an empty-struct
// Span, so neither call allocates.
type nopTracer struct{}

func (nopTracer) Enabled() bool             { return false }
func (nopTracer) Span(string, ...Attr) Span { return nopSpan{} }
func (nopTracer) Event(string, ...Attr)     {}

type nopSpan struct{}

func (nopSpan) Annotate(...Attr) {}
func (nopSpan) End(...Attr)      {}

// Nop returns the no-op tracer.
func Nop() Tracer { return nopTracer{} }

// Safe returns t, or the no-op tracer when t is nil, so callers can store
// an optional Tracer and use it unconditionally.
func Safe(t Tracer) Tracer {
	if t == nil {
		return Nop()
	}
	return t
}

// Instrumentable is implemented by components (partitioners, engines) that
// accept a tracer and a metrics registry after construction.
type Instrumentable interface {
	SetTelemetry(tr Tracer, m *Registry)
}

// recorder is the sink side shared by the real tracers.
type recorder interface {
	record(Record)
}

// span is the live-span implementation for recording tracers.
type span struct {
	rec   recorder
	name  string
	start time.Time
	mu    sync.Mutex
	attrs []Attr
}

func (s *span) Annotate(attrs ...Attr) {
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

func (s *span) End(attrs ...Attr) {
	s.mu.Lock()
	all := append(s.attrs, attrs...)
	s.attrs = nil
	s.mu.Unlock()
	s.rec.record(Record{
		Time:  s.start,
		Span:  true,
		Name:  s.name,
		Dur:   time.Since(s.start),
		Attrs: all,
	})
}

func startSpan(rec recorder, name string, attrs []Attr) Span {
	// Copy: the span outlives the call, and a caller reusing its variadic
	// backing array would otherwise rewrite the span's attributes.
	return &span{rec: rec, name: name, start: time.Now(), attrs: append([]Attr(nil), attrs...)}
}

// Memory is an in-process tracer for tests: it retains every record.
type Memory struct {
	mu      sync.Mutex
	records []Record
}

// NewMemory returns an empty in-memory tracer.
func NewMemory() *Memory { return &Memory{} }

// Enabled implements Tracer.
func (m *Memory) Enabled() bool { return true }

// Span implements Tracer.
func (m *Memory) Span(name string, attrs ...Attr) Span { return startSpan(m, name, attrs) }

// Event implements Tracer.
func (m *Memory) Event(name string, attrs ...Attr) {
	m.record(Record{Time: time.Now(), Name: name, Attrs: append([]Attr(nil), attrs...)})
}

func (m *Memory) record(r Record) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// Records returns a snapshot of everything recorded so far.
func (m *Memory) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.records...)
}

// Find returns the records with the given name.
func (m *Memory) Find(name string) []Record {
	var out []Record
	for _, r := range m.Records() {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Reset discards all records.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.records = nil
	m.mu.Unlock()
}

// JSONL streams records as one JSON object per line:
//
//	{"ts":"2026-08-06T10:11:12.13Z","type":"span","name":"bpart.layer","dur_us":812.4,"attrs":{"layer":1,"pieces":16}}
//
// Writes are buffered and mutex-serialized; call Close (or Flush) before
// reading the output.
type JSONL struct {
	mu         sync.Mutex
	bw         *bufio.Writer
	werr       error // first write failure, surfaced by Flush/Close
	flushEvery int   // auto-flush after this many records (0 = only on Flush/Close)
	sinceFlush int
}

// NewJSONL returns a tracer writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{bw: bufio.NewWriter(w)} }

// FlushEvery makes the tracer flush its buffer after every n records, so a
// run that dies without Close still leaves all but the last n records on
// disk (each record is written as one complete line, so the surviving
// prefix stays parseable; tracestat additionally tolerates a torn final
// line from a crash mid-write). n <= 0 restores flush-on-Close-only. It
// returns t for chaining at construction.
func (t *JSONL) FlushEvery(n int) *JSONL {
	t.mu.Lock()
	t.flushEvery = n
	t.sinceFlush = 0
	t.mu.Unlock()
	return t
}

// Enabled implements Tracer.
func (t *JSONL) Enabled() bool { return true }

// Span implements Tracer.
func (t *JSONL) Span(name string, attrs ...Attr) Span { return startSpan(t, name, attrs) }

// Event implements Tracer.
func (t *JSONL) Event(name string, attrs ...Attr) {
	t.record(Record{Time: time.Now(), Name: name, Attrs: append([]Attr(nil), attrs...)})
}

// jsonRecord is the wire shape of one JSONL line.
type jsonRecord struct {
	TS    string         `json:"ts"`
	Type  string         `json:"type"`
	Name  string         `json:"name"`
	DurUS *float64       `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func (t *JSONL) record(r Record) {
	jr := jsonRecord{
		TS:   r.Time.UTC().Format(time.RFC3339Nano),
		Type: "event",
		Name: r.Name,
	}
	if r.Span {
		jr.Type = "span"
		us := float64(r.Dur) / float64(time.Microsecond)
		jr.DurUS = &us
	}
	if len(r.Attrs) > 0 {
		jr.Attrs = make(map[string]any, len(r.Attrs))
		for _, a := range r.Attrs {
			jr.Attrs[a.Key] = a.Value()
		}
	}
	line, err := json.Marshal(jr)
	if err != nil {
		// An unencodable Any payload should not kill the traced run;
		// degrade to an error line that keeps the stream parseable.
		line = []byte(fmt.Sprintf(`{"ts":%q,"type":"error","name":%q}`, jr.TS, r.Name))
	}
	t.mu.Lock()
	// bufio's error is sticky, but record has no error channel of its own:
	// remember the first failure so Flush reports a truncated trace even
	// if a later Flush of the drained buffer succeeds.
	if _, err := t.bw.Write(append(line, '\n')); err != nil && t.werr == nil {
		t.werr = err
	}
	if t.flushEvery > 0 {
		t.sinceFlush++
		if t.sinceFlush >= t.flushEvery {
			t.sinceFlush = 0
			if err := t.bw.Flush(); err != nil && t.werr == nil {
				t.werr = err
			}
		}
	}
	t.mu.Unlock()
}

// Flush drains buffered lines to the underlying writer. It returns the
// first error any record write hit, so a truncated trace is never silent.
func (t *JSONL) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); t.werr == nil && err != nil {
		t.werr = err
	}
	return t.werr
}

// Close flushes; the underlying writer is the caller's to close.
func (t *JSONL) Close() error { return t.Flush() }

package telemetry

import (
	"testing"
	"time"
)

func TestStopwatchElapsedGrows(t *testing.T) {
	sw := NewStopwatch()
	time.Sleep(time.Millisecond)
	first := sw.Elapsed()
	if first <= 0 {
		t.Fatalf("Elapsed() = %v, want > 0", first)
	}
	time.Sleep(time.Millisecond)
	if second := sw.Elapsed(); second < first {
		t.Fatalf("Elapsed() went backwards: %v then %v", first, second)
	}
	if sw.Seconds() <= 0 {
		t.Fatalf("Seconds() = %v, want > 0", sw.Seconds())
	}
}

func TestStopwatchRestart(t *testing.T) {
	sw := NewStopwatch()
	time.Sleep(5 * time.Millisecond)
	sw.Restart()
	if e := sw.Elapsed(); e > 4*time.Millisecond {
		t.Fatalf("Elapsed() after Restart = %v, want well under the pre-restart 5ms", e)
	}
}

package telemetry

import "testing"

func TestNopProbe(t *testing.T) {
	p := NopProbe()
	pe := p.BeginPhase("x", Int("k", 8))
	if pe == nil {
		t.Fatal("NopProbe BeginPhase returned nil PhaseEnd")
	}
	pe.EndPhase(Int("done", 1))
	p.Lap("y")
}

func TestSafeProbe(t *testing.T) {
	if SafeProbe(nil) == nil {
		t.Fatal("SafeProbe(nil) returned nil")
	}
	SafeProbe(nil).BeginPhase("x").EndPhase()
	p := NopProbe()
	if SafeProbe(p) != p {
		t.Fatal("SafeProbe did not pass a non-nil probe through")
	}
}

func BenchmarkNopProbePhase(b *testing.B) {
	p := NopProbe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.BeginPhase("x").EndPhase()
	}
}

package telemetry

import "time"

// Stopwatch measures wall-clock durations for report columns.
//
// The deterministic packages (core, partition, cluster, engine, walk,
// fault, experiments) may not read the host clock directly — the noclock
// lint enforces it, because simulated time and bit-identical reruns are
// what the determinism gates stand on. Real elapsed-time measurements do
// belong in reports, though (Table 2's partitioner runtimes, for example),
// and telemetry is the sanctioned observability boundary: route them
// through a Stopwatch. The measured value is wall-clock and therefore
// host-dependent by nature; keeping every such read behind this one type
// makes that dependence auditable.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a stopwatch running since the moment of the call.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since the stopwatch (re)started.
func (s *Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// Seconds returns Elapsed as a float64 second count, the unit the report
// tables print.
func (s *Stopwatch) Seconds() float64 {
	return s.Elapsed().Seconds()
}

// Restart rewinds the stopwatch to now.
func (s *Stopwatch) Restart() {
	s.start = time.Now()
}

package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNopTracerZeroAlloc(t *testing.T) {
	tr := Nop()
	if tr.Enabled() {
		t.Fatal("no-op tracer reports Enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("phase")
		sp.Annotate()
		sp.End()
		tr.Event("event")
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer allocates %.1f per span+event, want 0", allocs)
	}
}

func TestSafe(t *testing.T) {
	if Safe(nil) == nil {
		t.Fatal("Safe(nil) returned nil")
	}
	m := NewMemory()
	if Safe(m) != Tracer(m) {
		t.Fatal("Safe did not pass through a non-nil tracer")
	}
}

func TestMemorySpansAndEvents(t *testing.T) {
	m := NewMemory()
	sp := m.Span("layer", Int("layer", 1))
	sp.Annotate(Int("pieces", 16))
	sp.End(Float("bias", 0.05))
	m.Event("tick", String("why", "test"), Bool("ok", true))

	recs := m.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	span := recs[0]
	if !span.Span || span.Name != "layer" || span.Dur < 0 {
		t.Fatalf("bad span record: %+v", span)
	}
	if got := span.Attr("layer"); got != int64(1) {
		t.Fatalf("layer attr = %v (%T), want 1", got, got)
	}
	if got := span.Attr("pieces"); got != int64(16) {
		t.Fatalf("pieces attr = %v, want 16", got)
	}
	if got := span.Attr("bias"); got != 0.05 {
		t.Fatalf("bias attr = %v, want 0.05", got)
	}
	ev := recs[1]
	if ev.Span || ev.Name != "tick" || ev.Attr("why") != "test" || ev.Attr("ok") != true {
		t.Fatalf("bad event record: %+v", ev)
	}
	if ev.Attr("missing") != nil {
		t.Fatal("missing attr should be nil")
	}

	if got := m.Find("layer"); len(got) != 1 {
		t.Fatalf("Find(layer) = %d records, want 1", len(got))
	}
	m.Reset()
	if len(m.Records()) != 0 {
		t.Fatal("Reset left records behind")
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	sp := tr.Span("bpart.layer", Int("layer", 2), Any("pieceV", []int{3, 5}))
	sp.End(Int("frozen", 4))
	tr.Event("cap.hit", String("dim", "E"))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	span := lines[0]
	if span["type"] != "span" || span["name"] != "bpart.layer" {
		t.Fatalf("bad span line: %v", span)
	}
	if _, ok := span["dur_us"].(float64); !ok {
		t.Fatalf("span line missing dur_us: %v", span)
	}
	attrs := span["attrs"].(map[string]any)
	if attrs["layer"] != 2.0 || attrs["frozen"] != 4.0 {
		t.Fatalf("bad span attrs: %v", attrs)
	}
	if v, ok := attrs["pieceV"].([]any); !ok || len(v) != 2 {
		t.Fatalf("Any slice attr not encoded: %v", attrs["pieceV"])
	}
	ev := lines[1]
	if ev["type"] != "event" || ev["name"] != "cap.hit" {
		t.Fatalf("bad event line: %v", ev)
	}
	if _, hasDur := ev["dur_us"]; hasDur {
		t.Fatal("event line carries dur_us")
	}
}

func TestJSONLUnencodableAttr(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Event("bad", Any("fn", func() {})) // func is not JSON-encodable
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("error line is not valid JSON: %v (%q)", err, buf.String())
	}
	if obj["type"] != "error" {
		t.Fatalf("degraded line type = %v, want error", obj["type"])
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.Span("work", Int("worker", i))
				sp.End(Int("j", j))
			}
		}(i)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("interleaved write corrupted a line: %q", l)
		}
	}
}

func TestJSONLFlushEveryLeavesParseablePrefix(t *testing.T) {
	// A crashed run never reaches Close; with FlushEvery, every complete
	// record up to the last flush interval must already be on the
	// underlying writer as whole, parseable lines.
	var buf bytes.Buffer
	tr := NewJSONL(&buf).FlushEvery(2)
	for i := 0; i < 7; i++ {
		tr.Event("cluster.superstep", Int("iteration", i))
	}
	// No Flush, no Close: simulate the crash.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d flushed lines, want 6 (7 records, flush every 2)", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("flushed line %d is not valid JSON: %v (%q)", i, err, line)
		}
		if obj["name"] != "cluster.superstep" {
			t.Fatalf("line %d name = %v", i, obj["name"])
		}
	}
}

func TestJSONLFlushEveryOne(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf).FlushEvery(1)
	sp := tr.Span("walk.run")
	sp.End()
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("record not flushed immediately: %q", buf.String())
	}
	tr.FlushEvery(0) // back to buffered
	tr.Event("e")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("record flushed despite FlushEvery(0): %q", buf.String())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("Close did not drain: %q", buf.String())
	}
}

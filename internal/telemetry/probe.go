package telemetry

// PhaseProbe receives begin/end notifications for named runtime phases —
// a partition stream, one BPart combining layer, a cluster superstep, a
// bench experiment — so a resource observer (internal/resview) can snapshot
// real machine state (wall clock, allocations, GC, goroutines) around each
// one.
//
// The probe lives in telemetry for the same reason Stopwatch does: the
// deterministic packages may not read the host clock or runtime themselves
// (the noclock lint enforces it), so they only ever hold this interface and
// call it at phase boundaries. The implementation behind it — and every
// host-dependent read — stays in the observability packages. A nil probe is
// the default everywhere; hook sites guard with one nil check, so the
// disabled path costs nothing and emits nothing (artifacts stay
// byte-identical to a build without the hooks).
//
// Implementations must be safe for concurrent use; phases from different
// goroutines may overlap.
type PhaseProbe interface {
	// BeginPhase opens a phase observation; the returned PhaseEnd must be
	// called exactly once when the phase completes.
	BeginPhase(name string, attrs ...Attr) PhaseEnd
	// Lap emits one observation covering everything since the previous Lap
	// with the same name (or since the probe started, for the first).
	// Baselines are kept per name, so laps of one stream (for example
	// cluster supersteps) interleaving with span-style phases of another do
	// not corrupt each other.
	Lap(name string, attrs ...Attr)
}

// PhaseEnd closes one phase observation opened by BeginPhase.
type PhaseEnd interface {
	// EndPhase records the phase's resource deltas, with any final
	// attributes attached.
	EndPhase(attrs ...Attr)
}

// nopProbe is the zero-overhead default: BeginPhase returns an
// empty-struct PhaseEnd, so neither call allocates.
type nopProbe struct{}

func (nopProbe) BeginPhase(string, ...Attr) PhaseEnd { return nopPhaseEnd{} }
func (nopProbe) Lap(string, ...Attr)                 {}

type nopPhaseEnd struct{}

func (nopPhaseEnd) EndPhase(...Attr) {}

// NopProbe returns the no-op probe.
func NopProbe() PhaseProbe { return nopProbe{} }

// SafeProbe returns p, or the no-op probe when p is nil, so callers can
// store an optional PhaseProbe and use it unconditionally.
func SafeProbe(p PhaseProbe) PhaseProbe {
	if p == nil {
		return NopProbe()
	}
	return p
}

// Probeable is implemented by components (partitioners, engines, clusters)
// that accept a resource probe after construction, mirroring
// Instrumentable for tracers.
type Probeable interface {
	SetResourceProbe(PhaseProbe)
}

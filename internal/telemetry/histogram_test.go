package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v     float64
		upper float64 // inclusive upper bound of the bucket v must land in
	}{
		{0, math.Ldexp(1, histMinExp-1)},
		{-3, math.Ldexp(1, histMinExp-1)},
		{0.0004, math.Ldexp(1, histMinExp-1)}, // ≤ 2^-11: underflow
		{1, 1},                                // exact power of two: its own bucket
		{1.5, 2},
		{2, 2},
		{2.01, 4},
		{1000, 1024},
		{math.Ldexp(1, histMaxExp), math.Ldexp(1, histMaxExp)},
		{math.Ldexp(1, histMaxExp+3), math.Inf(1)}, // overflow
	}
	for _, c := range cases {
		idx := histBucketIndex(c.v)
		if got := histBucketUpper(idx); got != c.upper {
			t.Errorf("bucket upper for %g = %g, want %g (bucket %d)", c.v, got, c.upper, idx)
		}
		if idx > 0 && idx < histBuckets-1 {
			lower := histBucketUpper(idx - 1)
			if !(c.v > lower && c.v <= histBucketUpper(idx)) {
				t.Errorf("%g outside its bucket (%g, %g]", c.v, lower, histBucketUpper(idx))
			}
		}
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("superstep_time_us")
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %g, want 5050", h.Sum())
	}
	if reg.Histogram("superstep_time_us") != h {
		t.Fatal("Histogram did not return the same instance")
	}
	// Log buckets give upper-bound estimates: p50 of 1..100 ranks at 50,
	// bucket (32,64] → 64; clamped quantiles are exact at the extremes.
	if got := h.Quantile(0.5); got != 64 {
		t.Fatalf("p50 = %g, want 64", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %g, want observed min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %g, want observed max 100", got)
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 || s.P50 != 64 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestNilHistogramIsNoop(t *testing.T) {
	var reg *Registry
	h := reg.Histogram("x")
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatalf("nil summary = %+v", s)
	}
}

func TestHistogramSummariesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("z_last").Observe(1)
	reg.Histogram("a_first").Observe(2)
	reg.Histogram("m_mid").Observe(3)
	sums := reg.HistogramSummaries()
	if len(sums) != 3 || sums[0].Name != "a_first" || sums[1].Name != "m_mid" || sums[2].Name != "z_last" {
		t.Fatalf("summaries out of order: %+v", sums)
	}
	var nilReg *Registry
	if nilReg.HistogramSummaries() != nil {
		t.Fatal("nil registry summaries not nil")
	}
}

func TestHistogramPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("walk_transfer_batch_walkers")
	h.Observe(3)
	h.Observe(4)
	h.Observe(900)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE walk_transfer_batch_walkers histogram",
		`walk_transfer_batch_walkers_bucket{le="4"} 2`,
		`walk_transfer_batch_walkers_bucket{le="1024"} 3`,
		`walk_transfer_batch_walkers_bucket{le="+Inf"} 3`,
		"walk_transfer_batch_walkers_sum 907",
		"walk_transfer_batch_walkers_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramInSnapshotIsJSONEncodable(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("cluster_superstep_time_us").Observe(12.5)
	snap := reg.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	if !strings.Contains(string(b), `"count":1`) {
		t.Fatalf("snapshot JSON missing histogram digest: %s", b)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Histogram("concurrent_us").Observe(float64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Histogram("concurrent_us").Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

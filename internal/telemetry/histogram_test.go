package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v     float64
		upper float64 // inclusive upper bound of the bucket v must land in
	}{
		{0, math.Ldexp(1, histMinExp-1)},
		{-3, math.Ldexp(1, histMinExp-1)},
		{0.0004, math.Ldexp(1, histMinExp-1)}, // ≤ 2^-11: underflow
		{1, 1},                                // exact power of two: its own bucket
		{1.5, 2},
		{2, 2},
		{2.01, 4},
		{1000, 1024},
		{math.Ldexp(1, histMaxExp), math.Ldexp(1, histMaxExp)},
		{math.Ldexp(1, histMaxExp+3), math.Inf(1)}, // overflow
	}
	for _, c := range cases {
		idx := histBucketIndex(c.v)
		if got := histBucketUpper(idx); got != c.upper {
			t.Errorf("bucket upper for %g = %g, want %g (bucket %d)", c.v, got, c.upper, idx)
		}
		if idx > 0 && idx < histBuckets-1 {
			lower := histBucketUpper(idx - 1)
			if !(c.v > lower && c.v <= histBucketUpper(idx)) {
				t.Errorf("%g outside its bucket (%g, %g]", c.v, lower, histBucketUpper(idx))
			}
		}
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("superstep_time_us")
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %g, want 5050", h.Sum())
	}
	if reg.Histogram("superstep_time_us") != h {
		t.Fatal("Histogram did not return the same instance")
	}
	// Log-bucket interpolation: p50 of 1..100 ranks at 50, which sits
	// 18/32 of the way through bucket (32,64], so the estimate is
	// 32·2^(18/32) ≈ 47.28 (the true p50 is 50; the old upper-bound
	// estimator said 64). Clamped quantiles stay exact at the extremes.
	wantP50 := 32 * math.Exp2(18.0/32)
	if got := h.Quantile(0.5); got != wantP50 {
		t.Fatalf("p50 = %g, want %g", got, wantP50)
	}
	// p99 ranks at 99, 35/36 through (64,128]: 64·2^(35/36) ≈ 125.9
	// overshoots the observed max and clamps to it.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %g, want clamped max 100", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %g, want observed min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %g, want observed max 100", got)
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 || s.P50 != wantP50 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestQuantileInterpolationPinned pins the interpolation formula on
// distributions small enough to derive by hand: the estimate for a rank in
// real bucket (lower, 2·lower] with prev observations before it and n
// inside must be exactly lower·2^((rank-prev)/n), clamped to [min, max].
func TestQuantileInterpolationPinned(t *testing.T) {
	t.Run("single bucket", func(t *testing.T) {
		var h Histogram
		// Ten values in (256, 512]: every quantile interpolates inside one
		// bucket, rank r → 256·2^(r/10).
		for i := 1; i <= 10; i++ {
			h.Observe(256 + float64(i)*25) // 281..506
		}
		for _, c := range []struct{ q, want float64 }{
			{0.1, 281}, // 256·2^(1/10) ≈ 274.4 undershoots the observed min
			{0.5, 256 * math.Exp2(5.0/10)},
			{0.9, 256 * math.Exp2(9.0/10)},
		} {
			if got := h.Quantile(c.q); got != c.want {
				t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
			}
		}
		// p100 clamps to the observed max, not the bucket edge 512.
		if got := h.Quantile(1); got != 506 {
			t.Errorf("p100 = %g, want 506", got)
		}
	})
	t.Run("two buckets", func(t *testing.T) {
		var h Histogram
		h.Observe(3) // (2,4]
		h.Observe(3)
		h.Observe(6) // (4,8]
		h.Observe(7)
		h.Observe(8)
		// p50 ranks at 3 (ceil(0.5·5)): first of the three in (4,8],
		// frac 1/3 → 4·2^(1/3).
		if got, want := h.Quantile(0.5), 4*math.Exp2(1.0/3); got != want {
			t.Errorf("p50 = %g, want %g", got, want)
		}
		// p20 ranks at 1, halfway through the two in (2,4] → 2·2^(1/2),
		// but the observed min 3 clamps it up.
		if got := h.Quantile(0.2); got != 3 {
			t.Errorf("p20 = %g, want clamped min 3", got)
		}
	})
	t.Run("underflow and overflow", func(t *testing.T) {
		var h Histogram
		h.Observe(0)
		h.Observe(math.Ldexp(1, histMaxExp+2))
		// Rank 1 lands in the underflow bucket, which has no finite lower
		// edge to interpolate against: it reports its upper edge 2^-11.
		if got, want := h.Quantile(0.5), math.Ldexp(1, histMinExp-1); got != want {
			t.Errorf("p50 = %g, want %g", got, want)
		}
		// Rank 2 lands in the overflow bucket: clamp to the observed max.
		if got, want := h.Quantile(1), math.Ldexp(1, histMaxExp+2); got != want {
			t.Errorf("p100 = %g, want %g", got, want)
		}
	})
}

// TestQuantileSeededDistribution pins exact estimates on a seeded
// splitmix64 stream (the xrand generator, inlined so telemetry keeps zero
// internal deps): 10k log-uniform draws over (2^-4, 2^12). The expected
// values are derived independently by replaying the stream into a plain
// sorted slice and applying the interpolation formula to the rank's
// bucket, so the test fails if either the bucketing or the interpolation
// drifts.
func TestQuantileSeededDistribution(t *testing.T) {
	const n = 10000
	state := uint64(42)
	next := func() float64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		u := float64(z>>11) / (1 << 53)
		return math.Exp2(-4 + 16*u) // log-uniform in (2^-4, 2^12)
	}
	var h Histogram
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = next()
		h.Observe(vals[i])
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	// Independent expectation: count per exponent bucket, locate the rank,
	// interpolate geometrically.
	expect := func(q float64) float64 {
		rank := int(math.Ceil(q * n))
		if rank < 1 {
			rank = 1
		}
		counts := map[int]int{}
		for _, v := range vals {
			counts[histBucketIndex(v)]++
		}
		cum := 0
		for i := 0; i < histBuckets; i++ {
			prev := cum
			cum += counts[i]
			if cum < rank {
				continue
			}
			est := histBucketUpper(i-1) * math.Exp2(float64(rank-prev)/float64(counts[i]))
			return math.Max(min, math.Min(max, est))
		}
		return max
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if got, want := h.Quantile(q), expect(q); got != want {
			t.Errorf("q=%g: got %g, want %g", q, got, want)
		}
	}
	// And the estimate must be within one bucket (a factor of 2) of the
	// true quantile of the underlying sample.
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		truth := sorted[int(math.Ceil(q*n))-1]
		est := h.Quantile(q)
		if est < truth/2 || est > truth*2 {
			t.Errorf("q=%g: estimate %g more than a bucket from true %g", q, est, truth)
		}
	}
}

func TestNilHistogramIsNoop(t *testing.T) {
	var reg *Registry
	h := reg.Histogram("x")
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatalf("nil summary = %+v", s)
	}
}

func TestHistogramSummariesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("z_last").Observe(1)
	reg.Histogram("a_first").Observe(2)
	reg.Histogram("m_mid").Observe(3)
	sums := reg.HistogramSummaries()
	if len(sums) != 3 || sums[0].Name != "a_first" || sums[1].Name != "m_mid" || sums[2].Name != "z_last" {
		t.Fatalf("summaries out of order: %+v", sums)
	}
	var nilReg *Registry
	if nilReg.HistogramSummaries() != nil {
		t.Fatal("nil registry summaries not nil")
	}
}

func TestHistogramPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("walk_transfer_batch_walkers")
	h.Observe(3)
	h.Observe(4)
	h.Observe(900)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE walk_transfer_batch_walkers histogram",
		`walk_transfer_batch_walkers_bucket{le="4"} 2`,
		`walk_transfer_batch_walkers_bucket{le="1024"} 3`,
		`walk_transfer_batch_walkers_bucket{le="+Inf"} 3`,
		"walk_transfer_batch_walkers_sum 907",
		"walk_transfer_batch_walkers_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramInSnapshotIsJSONEncodable(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("cluster_superstep_time_us").Observe(12.5)
	snap := reg.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	if !strings.Contains(string(b), `"count":1`) {
		t.Fatalf("snapshot JSON missing histogram digest: %s", b)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Histogram("concurrent_us").Observe(float64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Histogram("concurrent_us").Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := &Spec{Events: []Event{
		{Kind: Slow, Step: 3, Machine: 1},
		{Kind: MsgLoss, Step: 2, Machine: 0},
		{Kind: Crash, Step: 5, Machine: 2},
	}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Policy != Rollback || s.CheckpointEvery != DefaultCheckpointEvery || s.SchemaVersion != Version {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Events sorted by step.
	if s.Events[0].Kind != MsgLoss || s.Events[1].Kind != Slow || s.Events[2].Kind != Crash {
		t.Fatalf("events not sorted: %+v", s.Events)
	}
	if s.Events[1].Duration != 1 || s.Events[1].Factor != 2 {
		t.Fatalf("slow defaults: %+v", s.Events[1])
	}
	if s.Events[0].Frac != 1 {
		t.Fatalf("msgloss default frac: %+v", s.Events[0])
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Policy: "chaos"},
		{SchemaVersion: 99},
		{Events: []Event{{Kind: "meteor", Step: 1}}},
		{Events: []Event{{Kind: Crash, Step: -1}}},
		{Events: []Event{{Kind: Crash, Step: 0, Machine: -2}}},
		{Events: []Event{{Kind: Slow, Step: 0, Factor: 0.5}}},
		{Events: []Event{{Kind: MsgLoss, Step: 0, Frac: 1.5}}},
	}
	for i := range cases {
		if err := cases[i].Normalize(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, cases[i])
		}
	}
}

func TestSpecValidate(t *testing.T) {
	s := &Spec{Events: []Event{{Kind: Crash, Step: 1, Machine: 7}}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	// Restream needs a survivor.
	s2 := &Spec{Policy: Restream, Events: []Event{
		{Kind: Crash, Step: 1, Machine: 0},
		{Kind: Crash, Step: 2, Machine: 1},
	}}
	if err := s2.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(2); err == nil {
		t.Fatal("restream with no survivor accepted")
	}
	if err := s2.Validate(3); err != nil {
		t.Fatal(err)
	}
	// A machine cannot die twice under restream.
	s3 := &Spec{Policy: Restream, Events: []Event{
		{Kind: Crash, Step: 1, Machine: 0},
		{Kind: Crash, Step: 4, Machine: 0},
	}}
	if err := s3.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := s3.Validate(4); err == nil {
		t.Fatal("double crash of one machine accepted under restream")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := &Spec{
		Policy:          Restream,
		CheckpointEvery: 3,
		Seed:            42,
		Events: []Event{
			{Kind: Crash, Step: 5, Machine: 2},
			{Kind: Slow, Step: 1, Machine: 0, Duration: 2, Factor: 3},
			{Kind: MsgLoss, Step: 4, Machine: 1, Frac: 0.5},
		},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", s, got)
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"events":[],"surprise":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestReadSpecFileMissing(t *testing.T) {
	if _, err := ReadSpecFile("/nonexistent/fault.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	cfg := RandomConfig{
		Seed: 7, Machines: 8, Horizon: 20,
		CrashProb: 0.2, SlowProb: 0.3, LossProb: 0.3,
	}
	a, err := RandomSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different schedules:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c, err := RandomSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	// Crash cap respected.
	crashes := 0
	for _, ev := range a.Events {
		if ev.Kind == Crash {
			crashes++
		}
	}
	if crashes > 1 {
		t.Fatalf("MaxCrashes default 1 violated: %d crashes", crashes)
	}
	if _, err := RandomSpec(RandomConfig{Machines: 0, Horizon: 5}); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := RandomSpec(RandomConfig{Machines: 2, Horizon: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestRandomSpecSeedRecorded(t *testing.T) {
	s, err := RandomSpec(RandomConfig{Seed: 99, Machines: 4, Horizon: 10, SlowProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 99 {
		t.Fatalf("Seed not recorded: %d", s.Seed)
	}
	if len(s.Events) == 0 {
		t.Fatal("SlowProb=1 produced no events")
	}
}

func TestTestdataSpecsParse(t *testing.T) {
	for _, path := range []string{"testdata/crash5.json", "testdata/crash5_restream.json"} {
		s, err := ReadSpecFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(s.Events) != 1 || s.Events[0].Kind != Crash || s.Events[0].Step != 5 {
			t.Fatalf("%s: unexpected schedule %+v", path, s)
		}
		if err := s.Validate(8); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

package fault

import (
	"fmt"
	"math"
	"sort"

	"bpart/internal/cluster"
	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// RecoveryStats summarizes what fault handling cost a run. All fields are
// deterministic functions of (graph, assignment, spec, engine seed).
type RecoveryStats struct {
	// Checkpoints is how many interval checkpoints were written (the free
	// initial snapshot is not counted).
	Checkpoints int `json:"checkpoints"`
	// CheckpointVertices is the total vertex states written across all
	// checkpoints — checkpoint volume tracks per-machine vertex balance.
	CheckpointVertices int64 `json:"checkpoint_vertices"`
	// Crashes is how many crash events fired.
	Crashes int `json:"crashes"`
	// SuperstepsReplayed counts supersteps re-executed after rollbacks.
	SuperstepsReplayed int `json:"supersteps_replayed"`
	// RestreamedVertices counts vertices moved off dead machines.
	RestreamedVertices int `json:"restreamed_vertices"`
	// LostBatches counts message batches that needed retransmission.
	LostBatches int `json:"lost_batches"`
	// SlowSupersteps counts supersteps that ran with a straggler active.
	SlowSupersteps int `json:"slow_supersteps"`
	// RecoverySimTimeUS is simulated time spent on fault machinery:
	// checkpoint, restore and restream barriers plus replayed supersteps.
	RecoverySimTimeUS float64 `json:"recovery_sim_time_us"`
	// AddedWaitRatio is the share of total cluster capacity spent waiting
	// inside that recovery machinery — the fault-attributable slice of the
	// paper's Fig 13 metric.
	AddedWaitRatio float64 `json:"added_wait_ratio"`
}

// Hooks are the engine-side callbacks a Controller drives. Save and Restore
// move the algorithm's complete mutable state (ranks, frontiers, walker
// positions, RNG streams) into and out of an opaque snapshot; Reassign is
// called after a restream with the dead machine and the new placement so
// the engine can rebuild ownership-derived structures.
type Hooks struct {
	Save     func() any
	Restore  func(snapshot any)
	Reassign func(dead int, assignment []int)
}

// Action tells the engine loop what happened at a superstep boundary.
type Action int

const (
	// Continue: proceed to the next superstep normally.
	Continue Action = iota
	// Restored: a crash fired and state was rolled back. The engine's
	// Restore hook has already rewound its loop variables; the loop body
	// should just continue into the (replayed) next iteration.
	Restored
)

// Controller orchestrates one engine run under a fault spec: it supplies
// per-superstep disruptions to the cluster, checkpoints at interval
// barriers, and on a crash rolls the run back (and, under Restream,
// re-partitions the dead machine's vertices onto survivors).
//
// Protocol: the engine calls BeginRun once before its superstep loop, then
// EndSuperstep after every cluster.FinishIteration, continuing the loop
// when it returns Restored, and Finish once the loop exits. A Controller
// may drive several consecutive runs; machines killed under Restream stay
// dead across them.
type Controller struct {
	g    *graph.Graph
	cl   *cluster.Cluster
	spec *Spec

	tr  telemetry.Tracer
	reg *telemetry.Registry

	hooks       Hooks
	running     bool
	step        int // logical superstep currently executing
	lastCkpt    int // logical step of the newest checkpoint (-1 = initial)
	snap        any
	consumed    []bool  // one-shot events (crash, msgloss) already fired
	replayUntil int     // logical steps below this are replays
	owned       []int64 // per-machine owned-vertex counts
	transpose   *graph.Graph

	stats        RecoveryStats
	recoveryWait float64
}

// NewController validates the spec against the cluster and attaches itself
// as the cluster's disrupter. The spec is normalized in place.
func NewController(g *graph.Graph, cl *cluster.Cluster, spec *Spec) (*Controller, error) {
	if g == nil || cl == nil || spec == nil {
		return nil, fmt.Errorf("fault: NewController needs graph, cluster and spec")
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if err := spec.Validate(cl.NumMachines()); err != nil {
		return nil, err
	}
	c := &Controller{g: g, cl: cl, spec: spec, tr: telemetry.Nop()}
	cl.SetDisrupter(c)
	return c, nil
}

// SetTelemetry implements telemetry.Instrumentable: fault events (crash,
// checkpoint, restream) go to the tracer, fault_* totals to the registry.
func (c *Controller) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	c.tr = telemetry.Safe(tr)
	c.reg = reg
}

// Cluster returns the cluster this controller disrupts.
func (c *Controller) Cluster() *cluster.Cluster { return c.cl }

// Spec returns the (normalized) schedule being injected.
func (c *Controller) Spec() *Spec { return c.spec }

// BeginRun resets per-run state and takes the free initial snapshot.
func (c *Controller) BeginRun(h Hooks) error {
	if h.Save == nil || h.Restore == nil {
		return fmt.Errorf("fault: BeginRun needs Save and Restore hooks")
	}
	if c.spec.Policy == Restream && h.Reassign == nil {
		for _, ev := range c.spec.Events {
			if ev.Kind == Crash {
				return fmt.Errorf("fault: restream policy needs a Reassign hook")
			}
		}
	}
	c.hooks = h
	c.running = true
	c.step = 0
	c.lastCkpt = -1
	c.replayUntil = 0
	c.consumed = make([]bool, len(c.spec.Events))
	// Crash events aimed at machines already dead from a previous run on
	// this cluster can never fire again.
	for i, ev := range c.spec.Events {
		if ev.Kind == Crash && c.cl.Dead(ev.Machine) {
			c.consumed[i] = true
		}
	}
	c.refreshOwned()
	c.stats = RecoveryStats{}
	c.recoveryWait = 0
	// The initial state is always recoverable: loading the input is a
	// startup cost every run pays, so this snapshot is not charged.
	c.snap = c.hooks.Save()
	return nil
}

func (c *Controller) refreshOwned() {
	owned := make([]int64, c.cl.NumMachines())
	for _, m := range c.cl.Assignment() {
		owned[m]++
	}
	c.owned = owned
}

// Disrupt implements cluster.Disrupter for the logical superstep currently
// finishing. Slowdowns are pure functions of the logical step, so a replay
// re-experiences them (the straggler is still hot when the run retries);
// message loss is one-shot — a batch is lost once and the retransmission
// already paid for it.
func (c *Controller) Disrupt() cluster.Disruption {
	if !c.running {
		return cluster.Disruption{}
	}
	k := c.cl.NumMachines()
	var d cluster.Disruption
	slowed := false
	for i, ev := range c.spec.Events {
		switch ev.Kind {
		case Slow:
			if c.step >= ev.Step && c.step < ev.Step+ev.Duration {
				if d.Slow == nil {
					d.Slow = make([]float64, k)
					for j := range d.Slow {
						d.Slow[j] = 1
					}
				}
				d.Slow[ev.Machine] *= ev.Factor
				slowed = true
			}
		case MsgLoss:
			if ev.Step == c.step && !c.consumed[i] {
				c.consumed[i] = true
				if d.Resend == nil {
					d.Resend = make([]float64, k)
				}
				d.Resend[ev.Machine] += ev.Frac
				d.ExtraLatency += c.cl.Model().Latency
				c.stats.LostBatches++
				c.tr.Event("fault.msgloss",
					telemetry.Int("step", c.step),
					telemetry.Int("machine", ev.Machine),
					telemetry.Float("frac", ev.Frac),
				)
			}
		}
	}
	if slowed {
		c.stats.SlowSupersteps++
	}
	return d
}

// EndSuperstep is called by the engine after every FinishIteration. It
// accounts replays, fires due crashes (restoring state through the hooks),
// and writes interval checkpoints. stats is the engine's RunStats — the
// recovery barriers this call charges are appended to it.
func (c *Controller) EndSuperstep(stats *cluster.RunStats) Action {
	if !c.running {
		return Continue
	}
	step := c.step
	if step < c.replayUntil {
		c.stats.SuperstepsReplayed++
		if n := len(stats.Iterations); n > 0 {
			last := &stats.Iterations[n-1]
			c.stats.RecoverySimTimeUS += last.Time
			for _, w := range last.Waiting {
				c.recoveryWait += w
			}
		}
	}
	if idx := c.pendingCrash(step); idx >= 0 {
		c.consumed[idx] = true
		ev := c.spec.Events[idx]
		c.stats.Crashes++
		c.tr.Event("fault.crash",
			telemetry.Int("step", step),
			telemetry.Int("machine", ev.Machine),
			telemetry.String("policy", string(c.spec.Policy)),
			telemetry.Int("rollback_to", c.lastCkpt),
		)
		if c.spec.Policy == Restream && !c.cl.Dead(ev.Machine) && c.cl.LiveMachines() > 1 {
			c.restream(ev.Machine, stats)
		}
		c.chargePhase("restore", stats)
		c.hooks.Restore(c.snap)
		if c.spec.Policy == Restream && c.hooks.Reassign != nil {
			c.hooks.Reassign(ev.Machine, c.cl.Assignment())
		}
		c.replayUntil = step + 1
		c.step = c.lastCkpt + 1
		return Restored
	}
	if c.spec.CheckpointEvery > 0 && step-c.lastCkpt >= c.spec.CheckpointEvery {
		c.snap = c.hooks.Save()
		c.chargePhase("checkpoint", stats)
		c.lastCkpt = step
		c.stats.Checkpoints++
		var total int64
		for m, n := range c.owned {
			if !c.cl.Dead(m) {
				total += n
			}
		}
		c.stats.CheckpointVertices += total
		c.tr.Event("fault.checkpoint",
			telemetry.Int("step", step),
			telemetry.Int("vertices", int(total)),
		)
	}
	c.step = step + 1
	return Continue
}

// pendingCrash returns the index of an unconsumed crash event at step, or
// -1. Events are sorted, so the first match is the lowest machine.
func (c *Controller) pendingCrash(step int) int {
	for i, ev := range c.spec.Events {
		if ev.Kind == Crash && ev.Step == step && !c.consumed[i] {
			return i
		}
	}
	return -1
}

// chargePhase bills one checkpoint/restore barrier: every live machine is
// busy for CheckpointCost × its owned-vertex count.
func (c *Controller) chargePhase(kind string, stats *cluster.RunStats) {
	busy := make([]float64, c.cl.NumMachines())
	cost := c.cl.Model().CheckpointCost
	for m, n := range c.owned {
		if !c.cl.Dead(m) {
			busy[m] = cost * float64(n)
		}
	}
	c.addPhase(kind, busy, nil, stats)
}

// addPhase runs ChargePhaseWork and folds the result into both the engine's
// RunStats and the controller's recovery accounting. work (may be nil)
// attaches message counters to the phase record — restream uses it to put
// recovery traffic into the comm matrix.
func (c *Controller) addPhase(kind string, busy []float64, work *cluster.Counters, stats *cluster.RunStats) {
	st, err := c.cl.ChargePhaseWork(kind, busy, work)
	if err != nil {
		// busy is built from this cluster's machine count, so a length
		// error is unreachable; keep the stats consistent regardless.
		return
	}
	stats.Add(st)
	c.stats.RecoverySimTimeUS += st.Time
	for _, w := range st.Waiting {
		c.recoveryWait += w
	}
}

// restream permanently retires machine dead and Fennel-streams its vertices
// onto the survivors in out-degree order (prioritized restreaming): highest
// degree first, the vertices whose placement matters most while survivor
// loads are least constrained. The score is the Fennel objective over the
// paper's two-dimensional weight W_i = C·|V_i| + (1−C)·|E_i|/d̄, so the
// degraded cluster stays balanced in both dimensions.
func (c *Controller) restream(dead int, stats *cluster.RunStats) {
	owner := c.cl.Assignment()
	k := c.cl.NumMachines()
	var lost []graph.VertexID
	for v, m := range owner {
		if m == dead {
			lost = append(lost, graph.VertexID(v))
		}
	}
	sort.Slice(lost, func(a, b int) bool {
		da, db := c.g.OutDegree(lost[a]), c.g.OutDegree(lost[b])
		if da != db {
			return da > db
		}
		return lost[a] < lost[b]
	})
	// Survivor loads in both dimensions.
	vCnt := make([]float64, k)
	eCnt := make([]float64, k)
	for v, m := range owner {
		if m == dead {
			continue
		}
		vCnt[m]++
		eCnt[m] += float64(c.g.OutDegree(graph.VertexID(v)))
	}
	avgDeg := c.g.AvgDegree()
	if avgDeg <= 0 {
		avgDeg = 1
	}
	const (
		gamma = 1.5
		cmix  = 0.5 // paper's balance mix between vertices and edges
	)
	n, e := float64(c.g.NumVertices()), float64(c.g.NumEdges())
	alpha := e * math.Pow(float64(k), gamma-1) / math.Pow(n, gamma)
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		alpha = 1
	}
	if c.transpose == nil {
		// In-neighbours matter to affinity as much as out-neighbours;
		// build the reverse adjacency once per controller and reuse it
		// across crashes.
		c.transpose = c.g.Transpose()
	}
	received := make([]float64, k)
	receivedEdges := make([]float64, k)
	weight := func(i int) float64 { return cmix*vCnt[i] + (1-cmix)*eCnt[i]/avgDeg }
	aff := make([]float64, k)
	for _, v := range lost {
		for i := range aff {
			aff[i] = 0
		}
		for _, u := range c.g.Neighbors(v) {
			if m := owner[u]; m != dead {
				aff[m]++
			}
		}
		for _, u := range c.transpose.Neighbors(v) {
			if m := owner[u]; m != dead {
				aff[m]++
			}
		}
		best := -1
		var bestScore, bestW float64
		for i := 0; i < k; i++ {
			if i == dead || c.cl.Dead(i) {
				continue
			}
			w := weight(i)
			score := aff[i] - alpha*gamma*math.Pow(w, gamma-1)
			if best < 0 || score > bestScore || (score == bestScore && w < bestW) {
				best, bestScore, bestW = i, score, w
			}
		}
		owner[v] = best
		vCnt[best]++
		eCnt[best] += float64(c.g.OutDegree(v))
		received[best]++
		receivedEdges[best] += float64(c.g.OutDegree(v))
	}
	// Commit the new placement, retire the machine, and bill the transfer:
	// each survivor ingests its received vertex states (checkpoint read +
	// message) and rebuilds their adjacency (edge cost).
	if err := c.cl.Rehome(owner); err != nil {
		// owner was derived from this cluster's own assignment and only
		// ever points at live survivors, so this is unreachable; a spec
		// bug must not kill the run silently, though.
		c.tr.Event("fault.error", telemetry.String("err", err.Error()))
		return
	}
	if err := c.cl.MarkDead(dead); err != nil {
		c.tr.Event("fault.error", telemetry.String("err", err.Error()))
		return
	}
	model := c.cl.Model()
	busy := make([]float64, k)
	for i := 0; i < k; i++ {
		busy[i] = received[i]*(model.CheckpointCost+model.MessageCost) + receivedEdges[i]*model.EdgeCost
	}
	// With matrix capture on, publish the transfer as traffic from the dead
	// machine's row (its checkpointed states stream out) to each survivor's
	// column, one message per vertex state — so recovery-induced shifts are
	// visible in tracestat comm. Row sum equals Messages[dead], preserving
	// the reconciliation invariant. Disabled runs record nothing, keeping
	// their traces byte-identical to pre-commview behavior.
	var work *cluster.Counters
	if c.cl.CommMatrixEnabled() {
		work = c.cl.NewCounters()
		work.Messages[dead] = int64(len(lost))
		for i := 0; i < k; i++ {
			work.Pairs[dead][i] = int64(received[i])
		}
	}
	c.addPhase("restream", busy, work, stats)
	c.refreshOwned()
	c.stats.RestreamedVertices += len(lost)
	c.tr.Event("fault.restream",
		telemetry.Int("machine", dead),
		telemetry.Int("vertices", len(lost)),
		telemetry.Int("survivors", c.cl.LiveMachines()),
	)
}

// Finish closes the run, derives AddedWaitRatio against the final RunStats,
// publishes fault_* registry totals, and returns the stats.
func (c *Controller) Finish(stats *cluster.RunStats) RecoveryStats {
	c.running = false
	k := c.cl.NumMachines()
	if total := stats.TotalTime() * float64(k); total > 0 {
		c.stats.AddedWaitRatio = c.recoveryWait / total
	}
	if c.reg != nil {
		c.reg.Counter("fault_checkpoints_total").Add(int64(c.stats.Checkpoints))
		c.reg.Counter("fault_checkpoint_vertices_total").Add(c.stats.CheckpointVertices)
		c.reg.Counter("fault_crashes_total").Add(int64(c.stats.Crashes))
		c.reg.Counter("fault_supersteps_replayed_total").Add(int64(c.stats.SuperstepsReplayed))
		c.reg.Counter("fault_restreamed_vertices_total").Add(int64(c.stats.RestreamedVertices))
		c.reg.Counter("fault_lost_batches_total").Add(int64(c.stats.LostBatches))
		c.reg.Counter("fault_slow_supersteps_total").Add(int64(c.stats.SlowSupersteps))
		c.reg.Counter("fault_recovery_sim_time_us_total").Add(int64(c.stats.RecoverySimTimeUS))
	}
	c.tr.Event("fault.run",
		telemetry.Int("checkpoints", c.stats.Checkpoints),
		telemetry.Int("crashes", c.stats.Crashes),
		telemetry.Int("supersteps_replayed", c.stats.SuperstepsReplayed),
		telemetry.Int("restreamed_vertices", c.stats.RestreamedVertices),
		telemetry.Float("recovery_sim_time_us", c.stats.RecoverySimTimeUS),
		telemetry.Float("added_wait_ratio", c.stats.AddedWaitRatio),
	)
	return c.stats
}

// Package fault injects deterministic failures into the simulated cluster
// and recovers from them.
//
// The paper's waiting-ratio argument (§2.1, Fig 13) treats the slowest
// machine as the gate on every BSP barrier; a failed machine is the limiting
// case of a straggler. Fault schedules are plain data — a JSON spec listing
// crashes, transient slowdowns and lost message batches at chosen
// supersteps — so a run is exactly replayable: the same spec, graph and
// seed produce the same recovery, superstep for superstep. Random schedules
// come from internal/xrand and serialize to the same spec format.
//
// Recovery is two-dimensionally load-bound, which is the point of measuring
// it: checkpoint time tracks per-machine vertex count, recompute and
// restream time track per-machine edge count. Two policies are provided:
//
//   - Rollback treats a crash as transient — every machine reloads the last
//     superstep-boundary checkpoint and the run replays forward
//     deterministically.
//   - Restream treats the crash as permanent — survivors reload the
//     checkpoint, the dead machine's vertices are restreamed onto the
//     survivors in degree order with a Fennel objective (after Awadelkarim &
//     Ugander's prioritized restreaming), and the run replays in degraded
//     mode.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"bpart/internal/xrand"
)

// Version identifies the fault spec JSON schema. Bump on incompatible
// change.
const Version = 1

// Policy selects how the run recovers from a crash.
type Policy string

const (
	// Rollback reloads the last checkpoint on every machine and replays.
	Rollback Policy = "rollback"
	// Restream reloads the last checkpoint on the survivors, restreams
	// the dead machine's vertices onto them, and replays degraded.
	Restream Policy = "restream"
)

// Kind is a fault event type.
type Kind string

const (
	// Crash kills a machine at the barrier ending the event's superstep:
	// that superstep's results are lost and recovery kicks in.
	Crash Kind = "crash"
	// Slow multiplies a machine's compute time for Duration supersteps —
	// a transient straggler (thermal throttle, noisy neighbour).
	Slow Kind = "slow"
	// MsgLoss drops a fraction of a machine's outgoing message batch in
	// one superstep; the batch is retransmitted, costing extra comm time
	// and one extra latency round. Data is never lost — only time.
	MsgLoss Kind = "msgloss"
)

// Event is one scheduled fault.
type Event struct {
	Kind    Kind `json:"kind"`
	Step    int  `json:"step"`    // 0-based logical superstep
	Machine int  `json:"machine"` // target machine

	// Duration (Slow only) is how many supersteps the slowdown lasts;
	// 0 means 1.
	Duration int `json:"duration,omitempty"`
	// Factor (Slow only) multiplies compute time; must be >= 1.
	Factor float64 `json:"factor,omitempty"`
	// Frac (MsgLoss only) is the fraction of the batch lost, in (0, 1];
	// 0 means the whole batch.
	Frac float64 `json:"frac,omitempty"`
}

// Spec is a complete, replayable fault schedule.
type Spec struct {
	// SchemaVersion is Version; 0 is accepted on read and normalized.
	SchemaVersion int `json:"fault_schema_version"`
	// Policy is the crash recovery policy; "" means Rollback.
	Policy Policy `json:"policy,omitempty"`
	// CheckpointEvery checkpoints at the barrier of every Nth superstep;
	// 0 means the default of 4. Negative disables interval checkpoints
	// (crashes roll all the way back to the initial state).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Seed records the RandomSpec seed that generated this schedule, for
	// provenance; hand-written specs leave it 0.
	Seed uint64 `json:"seed,omitempty"`
	// Events is the schedule, kept sorted by (step, machine, kind).
	Events []Event `json:"events"`
}

// DefaultCheckpointEvery is the checkpoint interval used when the spec
// leaves CheckpointEvery at 0.
const DefaultCheckpointEvery = 4

// Normalize fills defaults and validates internal consistency. It must be
// called (directly or via NewController) before a spec is used.
func (s *Spec) Normalize() error {
	if s.SchemaVersion == 0 {
		s.SchemaVersion = Version
	}
	if s.SchemaVersion != Version {
		return fmt.Errorf("fault: spec schema version %d, this build reads %d", s.SchemaVersion, Version)
	}
	switch s.Policy {
	case "":
		s.Policy = Rollback
	case Rollback, Restream:
	default:
		return fmt.Errorf("fault: unknown policy %q", s.Policy)
	}
	if s.CheckpointEvery == 0 {
		s.CheckpointEvery = DefaultCheckpointEvery
	}
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.Step < 0 {
			return fmt.Errorf("fault: event %d at negative step %d", i, ev.Step)
		}
		if ev.Machine < 0 {
			return fmt.Errorf("fault: event %d targets negative machine %d", i, ev.Machine)
		}
		switch ev.Kind {
		case Crash:
		case Slow:
			if ev.Duration == 0 {
				ev.Duration = 1
			}
			if ev.Duration < 0 {
				return fmt.Errorf("fault: slow event %d duration %d", i, ev.Duration)
			}
			if ev.Factor == 0 {
				ev.Factor = 2
			}
			if ev.Factor < 1 {
				return fmt.Errorf("fault: slow event %d factor %v, want >= 1", i, ev.Factor)
			}
		case MsgLoss:
			if ev.Frac == 0 {
				ev.Frac = 1
			}
			if ev.Frac < 0 || ev.Frac > 1 {
				return fmt.Errorf("fault: msgloss event %d frac %v, want (0,1]", i, ev.Frac)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	sort.SliceStable(s.Events, func(a, b int) bool {
		ea, eb := s.Events[a], s.Events[b]
		if ea.Step != eb.Step {
			return ea.Step < eb.Step
		}
		if ea.Machine != eb.Machine {
			return ea.Machine < eb.Machine
		}
		return ea.Kind < eb.Kind
	})
	return nil
}

// Validate checks the schedule against a concrete cluster size. Restream
// needs at least one survivor, and a machine can only die once.
func (s *Spec) Validate(machines int) error {
	crashes := 0
	crashed := make(map[int]bool)
	for i, ev := range s.Events {
		if ev.Machine >= machines {
			return fmt.Errorf("fault: event %d targets machine %d of %d", i, ev.Machine, machines)
		}
		if ev.Kind == Crash {
			crashes++
			if s.Policy == Restream {
				if crashed[ev.Machine] {
					return fmt.Errorf("fault: machine %d crashes twice under restream", ev.Machine)
				}
				crashed[ev.Machine] = true
			}
		}
	}
	if s.Policy == Restream && crashes >= machines {
		return fmt.Errorf("fault: %d crashes leave no survivor among %d machines", crashes, machines)
	}
	return nil
}

// Clone returns a deep copy of the spec, so one parsed schedule can drive
// several controllers (each controller tracks consumed events per run, but
// Normalize mutates the spec it is handed).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Events = append([]Event(nil), s.Events...)
	return &c
}

// ForMachines returns a clone with every event aimed at a machine the
// cluster does not have dropped — the best-effort projection of one
// schedule onto clusters of different sizes (a bench sweep over k).
func (s *Spec) ForMachines(machines int) *Spec {
	c := *s
	c.Events = nil
	for _, ev := range s.Events {
		if ev.Machine < machines {
			c.Events = append(c.Events, ev)
		}
	}
	return &c
}

// WriteJSON writes the spec as indented JSON.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSpec parses and normalizes a spec.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: decode spec: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSpecFile reads a spec from path.
func ReadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	defer f.Close()
	s, err := ReadSpec(f)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return s, nil
}

// RandomConfig parameterizes RandomSpec.
type RandomConfig struct {
	// Seed drives the xrand stream; the same config always yields the
	// same schedule.
	Seed uint64
	// Machines is the cluster size the schedule targets.
	Machines int
	// Horizon is how many supersteps the schedule covers.
	Horizon int
	// CrashProb, SlowProb and LossProb are per-superstep probabilities of
	// drawing each event kind.
	CrashProb, SlowProb, LossProb float64
	// MaxCrashes caps crash events; 0 means 1.
	MaxCrashes int
	// Policy and CheckpointEvery pass through to the spec (zero values
	// take the spec defaults).
	Policy          Policy
	CheckpointEvery int
}

// RandomSpec draws a replayable schedule. The draw order per superstep is
// fixed (slow, loss, crash) so a schedule is a pure function of the config.
func RandomSpec(cfg RandomConfig) (*Spec, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("fault: random spec for %d machines", cfg.Machines)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: random spec horizon %d", cfg.Horizon)
	}
	maxCrashes := cfg.MaxCrashes
	if maxCrashes == 0 {
		maxCrashes = 1
	}
	rng := xrand.New(cfg.Seed)
	s := &Spec{
		SchemaVersion:   Version,
		Policy:          cfg.Policy,
		CheckpointEvery: cfg.CheckpointEvery,
		Seed:            cfg.Seed,
	}
	crashes := 0
	crashed := make(map[int]bool)
	for step := 0; step < cfg.Horizon; step++ {
		if rng.Float64() < cfg.SlowProb {
			s.Events = append(s.Events, Event{
				Kind:     Slow,
				Step:     step,
				Machine:  rng.Intn(cfg.Machines),
				Duration: 1 + rng.Intn(3),
				Factor:   1.5 + 2.5*rng.Float64(),
			})
		}
		if rng.Float64() < cfg.LossProb {
			s.Events = append(s.Events, Event{
				Kind:    MsgLoss,
				Step:    step,
				Machine: rng.Intn(cfg.Machines),
				Frac:    0.25 + 0.75*rng.Float64(),
			})
		}
		if crashes < maxCrashes && rng.Float64() < cfg.CrashProb {
			m := rng.Intn(cfg.Machines)
			if !crashed[m] {
				crashed[m] = true
				crashes++
				s.Events = append(s.Events, Event{Kind: Crash, Step: step, Machine: m})
			}
		}
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	if err := s.Validate(cfg.Machines); err != nil {
		return nil, err
	}
	return s, nil
}

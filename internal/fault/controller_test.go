package fault

import (
	"reflect"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// toyEngine is a minimal BSP computation exercising the full controller
// protocol: each superstep increments every vertex's value by 1 on its
// owning machine. After S completed supersteps every value is exactly S —
// so lost work, bad rollbacks or double-applied replays are all visible as
// wrong values.
type toyEngine struct {
	g     *graph.Graph
	cl    *cluster.Cluster
	ctl   *Controller
	state []int
	stats cluster.RunStats
}

type toySnap struct {
	state []int
	it    int
}

func newToy(t *testing.T, n, k int, spec *Spec) *toyEngine {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
	}
	g := b.Build()
	assign := make([]int, n)
	for v := range assign {
		assign[v] = v % k
	}
	cl, err := cluster.New(assign, k, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(g, cl, spec)
	if err != nil {
		t.Fatal(err)
	}
	return &toyEngine{g: g, cl: cl, ctl: ctl, state: make([]int, n)}
}

// run executes S supersteps under the controller and returns RecoveryStats.
func (e *toyEngine) run(t *testing.T, supersteps int) RecoveryStats {
	t.Helper()
	it := -1
	err := e.ctl.BeginRun(Hooks{
		Save: func() any {
			return &toySnap{state: append([]int(nil), e.state...), it: it}
		},
		Restore: func(s any) {
			sn := s.(*toySnap)
			copy(e.state, sn.state)
			it = sn.it
		},
		Reassign: func(dead int, assignment []int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it = 0; it < supersteps; it++ {
		w := e.cl.NewCounters()
		for v := range e.state {
			m := e.cl.Owner(graph.VertexID(v))
			if e.cl.Dead(m) {
				continue
			}
			e.state[v]++
			w.Vertices[m]++
			w.Messages[m]++
		}
		e.stats.Add(e.cl.FinishIteration(w))
		if e.ctl.EndSuperstep(&e.stats) == Restored {
			continue
		}
	}
	return e.ctl.Finish(&e.stats)
}

func (e *toyEngine) checkState(t *testing.T, want int) {
	t.Helper()
	for v, x := range e.state {
		if x != want {
			t.Fatalf("vertex %d = %d after recovery, want %d (state %v)", v, x, want, e.state)
		}
	}
}

func TestRollbackRecoversExactState(t *testing.T) {
	spec := &Spec{CheckpointEvery: 2, Events: []Event{{Kind: Crash, Step: 5, Machine: 1}}}
	e := newToy(t, 12, 3, spec)
	rs := e.run(t, 10)
	e.checkState(t, 10)
	if rs.Crashes != 1 {
		t.Fatalf("Crashes = %d", rs.Crashes)
	}
	// Checkpoints at steps 1,3,5(replay),7,9 — the crash preempts the
	// step-5 checkpoint on the first pass, and it is written on replay.
	if rs.Checkpoints != 5 {
		t.Fatalf("Checkpoints = %d", rs.Checkpoints)
	}
	// Crash at 5, last checkpoint at 3: supersteps 4 and 5 replay.
	if rs.SuperstepsReplayed != 2 {
		t.Fatalf("SuperstepsReplayed = %d", rs.SuperstepsReplayed)
	}
	if rs.RestreamedVertices != 0 {
		t.Fatalf("rollback restreamed %d vertices", rs.RestreamedVertices)
	}
	if rs.RecoverySimTimeUS <= 0 || rs.AddedWaitRatio < 0 || rs.AddedWaitRatio >= 1 {
		t.Fatalf("implausible overhead: %+v", rs)
	}
	// Total supersteps recorded: 10 algorithm + 2 replays + 5 checkpoints
	// + 1 restore barrier.
	if got := len(e.stats.Iterations); got != 18 {
		t.Fatalf("iterations recorded = %d, want 18", got)
	}
}

func TestRollbackToInitialStateWithoutCheckpoints(t *testing.T) {
	// CheckpointEvery < 0 disables interval checkpoints: a crash rolls all
	// the way back to the initial snapshot and replays everything.
	spec := &Spec{CheckpointEvery: -1, Events: []Event{{Kind: Crash, Step: 3, Machine: 0}}}
	e := newToy(t, 8, 2, spec)
	rs := e.run(t, 6)
	e.checkState(t, 6)
	if rs.Checkpoints != 0 {
		t.Fatalf("Checkpoints = %d with interval disabled", rs.Checkpoints)
	}
	if rs.SuperstepsReplayed != 4 { // steps 0..3 replay
		t.Fatalf("SuperstepsReplayed = %d, want 4", rs.SuperstepsReplayed)
	}
}

func TestRestreamDegradedMode(t *testing.T) {
	spec := &Spec{
		Policy:          Restream,
		CheckpointEvery: 2,
		Events:          []Event{{Kind: Crash, Step: 4, Machine: 2}},
	}
	e := newToy(t, 30, 3, spec)
	reassigned := false
	// Re-run with a Reassign hook that verifies the new placement.
	it := -1
	err := e.ctl.BeginRun(Hooks{
		Save:    func() any { return &toySnap{state: append([]int(nil), e.state...), it: it} },
		Restore: func(s any) { sn := s.(*toySnap); copy(e.state, sn.state); it = sn.it },
		Reassign: func(dead int, assignment []int) {
			reassigned = true
			if dead != 2 {
				t.Errorf("Reassign dead = %d", dead)
			}
			for v, m := range assignment {
				if m == 2 {
					t.Errorf("vertex %d still on dead machine", v)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it = 0; it < 8; it++ {
		w := e.cl.NewCounters()
		for v := range e.state {
			m := e.cl.Owner(graph.VertexID(v))
			if e.cl.Dead(m) {
				continue
			}
			e.state[v]++
			w.Vertices[m]++
		}
		e.stats.Add(e.cl.FinishIteration(w))
		if e.ctl.EndSuperstep(&e.stats) == Restored {
			continue
		}
	}
	rs := e.ctl.Finish(&e.stats)
	e.checkState(t, 8)
	if !reassigned {
		t.Fatal("Reassign hook never called")
	}
	if !e.cl.Dead(2) || e.cl.LiveMachines() != 2 {
		t.Fatalf("machine 2 not retired: dead=%v live=%d", e.cl.Dead(2), e.cl.LiveMachines())
	}
	if rs.RestreamedVertices != 10 {
		t.Fatalf("RestreamedVertices = %d, want 10", rs.RestreamedVertices)
	}
	// Survivors must share the load roughly evenly: the Fennel objective
	// keeps both dimensions balanced, so neither survivor takes everything.
	counts := map[int]int{}
	for _, m := range e.cl.Assignment() {
		counts[m]++
	}
	if counts[0] == 10 || counts[1] == 10 {
		t.Fatalf("restream dumped all vertices on one survivor: %v", counts)
	}
	if counts[0]+counts[1] != 30 {
		t.Fatalf("vertices lost in restream: %v", counts)
	}
}

func TestRecoveryStatsDeterministic(t *testing.T) {
	spec := func() *Spec {
		s, err := RandomSpec(RandomConfig{
			Seed: 11, Machines: 4, Horizon: 12,
			CrashProb: 0.3, SlowProb: 0.4, LossProb: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := newToy(t, 40, 4, spec()).run(t, 12)
	b := newToy(t, 40, 4, spec()).run(t, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different RecoveryStats:\n%+v\n%+v", a, b)
	}
}

func TestMsgLossAndSlowTiming(t *testing.T) {
	spec := &Spec{Events: []Event{
		{Kind: Slow, Step: 1, Machine: 0, Duration: 2, Factor: 3},
		{Kind: MsgLoss, Step: 2, Machine: 1, Frac: 0.5},
	}}
	e := newToy(t, 8, 2, spec)
	rs := e.run(t, 5)
	e.checkState(t, 5)
	if rs.SlowSupersteps != 2 {
		t.Fatalf("SlowSupersteps = %d, want 2", rs.SlowSupersteps)
	}
	if rs.LostBatches != 1 {
		t.Fatalf("LostBatches = %d, want 1", rs.LostBatches)
	}
	if rs.Crashes != 0 || rs.SuperstepsReplayed != 0 {
		t.Fatalf("crashless run shows recovery: %+v", rs)
	}
	// Timing, not data, absorbs the faults: the slowed supersteps must be
	// strictly longer than an undisturbed one.
	its := e.stats.Iterations
	if !(its[1].Time > its[0].Time) {
		t.Fatalf("slow superstep not slower: %v vs %v", its[1].Time, its[0].Time)
	}
}

func TestControllerTelemetry(t *testing.T) {
	spec := &Spec{CheckpointEvery: 2, Events: []Event{{Kind: Crash, Step: 3, Machine: 0}}}
	e := newToy(t, 8, 2, spec)
	mem := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	e.cl.SetTelemetry(mem, reg)
	e.ctl.SetTelemetry(mem, reg)
	rs := e.run(t, 6)
	names := map[string]int{}
	for _, r := range mem.Records() {
		names[r.Name]++
	}
	if names["fault.crash"] != 1 || names["fault.run"] != 1 {
		t.Fatalf("fault events missing: %v", names)
	}
	if names["fault.checkpoint"] == 0 {
		t.Fatalf("no checkpoint events: %v", names)
	}
	if got := reg.Counter("fault_crashes_total").Value(); got != 1 {
		t.Fatalf("fault_crashes_total = %d", got)
	}
	if got := reg.Counter("fault_supersteps_replayed_total").Value(); got != int64(rs.SuperstepsReplayed) {
		t.Fatalf("fault_supersteps_replayed_total = %d, want %d", got, rs.SuperstepsReplayed)
	}
}

func TestControllerValidation(t *testing.T) {
	e := newToy(t, 8, 2, &Spec{})
	if _, err := NewController(nil, e.cl, &Spec{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := &Spec{Events: []Event{{Kind: Crash, Step: 0, Machine: 9}}}
	if _, err := NewController(e.g, e.cl, bad); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	if err := e.ctl.BeginRun(Hooks{}); err == nil {
		t.Fatal("BeginRun without hooks accepted")
	}
	restream := &Spec{Policy: Restream, Events: []Event{{Kind: Crash, Step: 0, Machine: 0}}}
	e2 := newToy(t, 8, 2, restream)
	err := e2.ctl.BeginRun(Hooks{
		Save:    func() any { return nil },
		Restore: func(any) {},
	})
	if err == nil {
		t.Fatal("restream without Reassign hook accepted")
	}
}

// TestRestreamOnRealGraph sanity-checks degraded-mode balance on a skewed
// generated graph rather than a ring.
func TestRestreamOnRealGraph(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 400, AvgDegree: 8, Skew: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	assign := make([]int, n)
	for v := range assign {
		assign[v] = v % 4
	}
	cl, err := cluster.New(assign, 4, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Policy: Restream, CheckpointEvery: 2, Events: []Event{{Kind: Crash, Step: 2, Machine: 3}}}
	ctl, err := NewController(g, cl, spec)
	if err != nil {
		t.Fatal(err)
	}
	state := make([]int, n)
	var stats cluster.RunStats
	it := -1
	err = ctl.BeginRun(Hooks{
		Save:     func() any { return &toySnap{state: append([]int(nil), state...), it: it} },
		Restore:  func(s any) { sn := s.(*toySnap); copy(state, sn.state); it = sn.it },
		Reassign: func(dead int, assignment []int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it = 0; it < 6; it++ {
		w := cl.NewCounters()
		for v := range state {
			m := cl.Owner(graph.VertexID(v))
			if cl.Dead(m) {
				continue
			}
			state[v]++
			w.Vertices[m]++
		}
		stats.Add(cl.FinishIteration(w))
		if ctl.EndSuperstep(&stats) == Restored {
			continue
		}
	}
	ctl.Finish(&stats)
	for v, x := range state {
		if x != 6 {
			t.Fatalf("vertex %d = %d, want 6", v, x)
		}
	}
	// Post-restream vertex imbalance among survivors stays modest: no
	// survivor carries more than 1.5× the mean.
	counts := make([]int, 4)
	for _, m := range cl.Assignment() {
		counts[m]++
	}
	if counts[3] != 0 {
		t.Fatalf("dead machine still owns %d vertices", counts[3])
	}
	mean := float64(n) / 3
	for m := 0; m < 3; m++ {
		if float64(counts[m]) > 1.5*mean {
			t.Fatalf("survivor %d overloaded: %v (mean %.1f)", m, counts, mean)
		}
	}
}

package gen

import (
	"fmt"
	"sort"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT) generator of
// Chakrabarti et al., the standard scale-free generator in the Graph500
// benchmark. Quadrant probabilities (A,B,C,D) must sum to 1; the classic
// skewed setting is (0.57, 0.19, 0.19, 0.05).
type RMATConfig struct {
	// Scale: the graph has 2^Scale vertices.
	Scale int
	// EdgeFactor: arcs per vertex; total arcs = EdgeFactor·2^Scale.
	EdgeFactor int
	A, B, C    float64 // D = 1 − A − B − C
	Seed       uint64
}

// RMAT generates an R-MAT graph.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale <= 0 || cfg.Scale > 28 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range (0,28]", cfg.Scale)
	}
	if cfg.EdgeFactor <= 0 {
		return nil, fmt.Errorf("gen: RMAT edge factor %d, want > 0", cfg.EdgeFactor)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < -1e-9 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v,%v,%v) invalid", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := xrand.New(cfg.Seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			u := rng.Float64()
			switch {
			case u < cfg.A:
				// top-left: no bits set
			case u < cfg.A+cfg.B:
				dst |= 1 << bit
			case u < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
	}
	return b.Build(), nil
}

// BarabasiAlbert generates an undirected preferential-attachment graph with
// attach arcs per new vertex (stored as both directed arcs). Vertex 0..attach
// form an initial clique-free seed chain. Older vertices accumulate degree,
// so IDs and degree are naturally correlated — the same property the ranked
// Chung–Lu model builds in explicitly.
func BarabasiAlbert(n, attach int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || attach <= 0 {
		return nil, fmt.Errorf("gen: BA with n=%d attach=%d", n, attach)
	}
	if attach >= n {
		return nil, fmt.Errorf("gen: BA attach %d must be < n %d", attach, n)
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	// endpoints holds one entry per arc endpoint; sampling uniformly from
	// it implements preferential attachment.
	endpoints := make([]graph.VertexID, 0, 2*n*attach)
	// Seed chain 0-1-2-...-attach.
	for v := 1; v <= attach; v++ {
		b.AddUndirected(graph.VertexID(v-1), graph.VertexID(v))
		endpoints = append(endpoints, graph.VertexID(v-1), graph.VertexID(v))
	}
	for v := attach + 1; v < n; v++ {
		chosen := make(map[graph.VertexID]bool, attach)
		for len(chosen) < attach {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		// Attach in sorted target order: chosen is a map, and letting its
		// iteration order pick the arc insertion order (and the endpoints
		// slice the next rounds sample from) made every run grow a
		// different graph from the same seed.
		targets := make([]graph.VertexID, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			b.AddUndirected(graph.VertexID(v), t)
			endpoints = append(endpoints, graph.VertexID(v), t)
		}
	}
	return b.Build(), nil
}

// ErdosRenyi generates a directed G(n, m) graph with m = n·avgDegree
// uniformly random arcs (self-loops excluded). It has no skew and serves as
// the control case: on it, Chunk-V and Chunk-E are both balanced and BPart
// has nothing to fix.
func ErdosRenyi(n int, avgDegree float64, seed uint64) (*graph.Graph, error) {
	if n <= 1 || avgDegree < 0 {
		return nil, fmt.Errorf("gen: ER with n=%d avgDegree=%v", n, avgDegree)
	}
	m := int(float64(n) * avgDegree)
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
	}
	return b.Build(), nil
}

// Ring generates a directed cycle 0→1→…→n−1→0. Used by tests that need a
// fully deterministic, perfectly regular graph.
func Ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
	}
	return b.Build()
}

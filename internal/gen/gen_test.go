package gen

import (
	"math"
	"testing"
	"testing/quick"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

func TestChungLuShape(t *testing.T) {
	g, err := ChungLu(Config{NumVertices: 5000, AvgDegree: 20, Skew: 0.75, Locality: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	avg := g.AvgDegree()
	if avg < 18 || avg > 24 {
		t.Fatalf("avg degree %v, want ≈20", avg)
	}
	s := graph.ComputeStats(g)
	if s.MaxDegree < 100 {
		t.Fatalf("max degree %d: graph not scale-free", s.MaxDegree)
	}
	if s.GiniDegree < 0.3 {
		t.Fatalf("degree gini %v too uniform for a scale-free graph", s.GiniDegree)
	}
	if s.ZeroDegree != 0 {
		t.Fatalf("%d zero-out-degree vertices despite MinOutDegree=1", s.ZeroDegree)
	}
}

func TestChungLuDeterministic(t *testing.T) {
	cfg := Config{NumVertices: 1000, AvgDegree: 10, Skew: 0.7, Locality: 0.3, Seed: 42}
	g1, err1 := ChungLu(cfg)
	g2, err2 := ChungLu(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.EdgeList(), g2.EdgeList()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestChungLuIDDegreeCorrelation(t *testing.T) {
	g, err := ChungLu(Config{NumVertices: 10000, AvgDegree: 20, Skew: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The first 10% of IDs must own far more than 10% of edges — this is
	// the property that makes Chunk-V edge-skewed in the paper's Fig 3/6.
	firstDecile := 0
	for v := 0; v < 1000; v++ {
		firstDecile += g.OutDegree(graph.VertexID(v))
	}
	share := float64(firstDecile) / float64(g.NumEdges())
	if share < 0.3 {
		t.Fatalf("first-decile edge share %v, want ≥ 0.3 (hub concentration)", share)
	}
}

func TestChungLuShuffleBreaksCorrelation(t *testing.T) {
	g, err := ChungLu(Config{NumVertices: 10000, AvgDegree: 20, Skew: 0.8, Seed: 3, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	firstDecile := 0
	for v := 0; v < 1000; v++ {
		firstDecile += g.OutDegree(graph.VertexID(v))
	}
	share := float64(firstDecile) / float64(g.NumEdges())
	if share > 0.2 {
		t.Fatalf("shuffled graph still hub-concentrated: first-decile share %v", share)
	}
}

func TestChungLuNoSelfLoops(t *testing.T) {
	g, err := ChungLu(Config{NumVertices: 500, AvgDegree: 8, Skew: 0.7, Locality: 0.8, Window: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(e graph.Edge) bool {
		if e.Src == e.Dst {
			t.Errorf("self loop at %d", e.Src)
			return false
		}
		return true
	})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumVertices: 0, AvgDegree: 1, Skew: 0.5},
		{NumVertices: 10, AvgDegree: 0, Skew: 0.5},
		{NumVertices: 10, AvgDegree: 1, Skew: 0},
		{NumVertices: 10, AvgDegree: 1, Skew: 1},
		{NumVertices: 10, AvgDegree: 1, Skew: 0.5, Locality: 1.5},
		{NumVertices: 10, AvgDegree: 1, Skew: 0.5, MinOutDegree: -1},
	}
	for i, cfg := range bad {
		if _, err := ChungLu(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4096 {
		t.Fatalf("|V| = %d, want 4096", g.NumVertices())
	}
	if g.NumEdges() != 4096*8 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.GiniDegree < 0.3 {
		t.Fatalf("RMAT gini %v too uniform", s.GiniDegree)
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 30, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, EdgeFactor: 1, A: 0.9, B: 0.2, C: 0.2},
		{Scale: 4, EdgeFactor: 1, A: -0.1, B: 0.5, C: 0.5},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg); err == nil {
			t.Errorf("case %d: invalid RMAT config accepted", i)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(2000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected: every arc has its reverse.
	g.Edges(func(e graph.Edge) bool {
		if !g.HasEdge(e.Dst, e.Src) {
			t.Errorf("missing reverse of %v", e)
			return false
		}
		return true
	})
	// Old vertices must be hubs.
	oldDeg, newDeg := 0, 0
	for v := 0; v < 100; v++ {
		oldDeg += g.OutDegree(graph.VertexID(v))
		newDeg += g.OutDegree(graph.VertexID(1900 + v))
	}
	if oldDeg <= newDeg {
		t.Fatalf("no preferential attachment: old=%d new=%d", oldDeg, newDeg)
	}
	if _, err := BarabasiAlbert(10, 10, 1); err == nil {
		t.Fatal("attach >= n accepted")
	}
	if _, err := BarabasiAlbert(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(3000, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 30000 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	s := graph.ComputeStats(g)
	if s.GiniDegree > 0.25 {
		t.Fatalf("ER gini %v too skewed", s.GiniDegree)
	}
	g.Edges(func(e graph.Edge) bool {
		if e.Src == e.Dst {
			t.Errorf("ER self loop at %d", e.Src)
		}
		return true
	})
	if _, err := ErdosRenyi(1, 5, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.NumEdges() != 5 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if !g.HasEdge(graph.VertexID(v), graph.VertexID((v+1)%5)) {
			t.Fatalf("ring arc %d missing", v)
		}
	}
}

func TestRelabel(t *testing.T) {
	g := Ring(4)
	perm := []int{2, 3, 0, 1}
	r := Relabel(g, perm)
	// 0->1 becomes 2->3, etc.
	if !r.HasEdge(2, 3) || !r.HasEdge(3, 0) || !r.HasEdge(0, 1) || !r.HasEdge(1, 2) {
		t.Fatalf("relabel wrong: %v", r.EdgeList())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad perm length did not panic")
		}
	}()
	Relabel(g, []int{0})
}

func TestPresets(t *testing.T) {
	for _, d := range Datasets() {
		cfg, err := PresetConfig(d, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		g, err := ChungLu(cfg)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		want := cfg.AvgDegree
		got := g.AvgDegree()
		if math.Abs(got-want)/want > 0.25 {
			t.Errorf("%s: avg degree %v, want ≈%v", d, got, want)
		}
	}
	if _, err := PresetConfig("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := PresetConfig(LJSim, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Preset(LJSim, -1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestPresetMinimumSize(t *testing.T) {
	cfg, err := PresetConfig(LJSim, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumVertices < 16 {
		t.Fatalf("preset floor violated: %d", cfg.NumVertices)
	}
}

// Property: for any valid small config, the generated graph validates, has
// no self loops, and hits the degree floor.
func TestQuickChungLuInvariants(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawSkew uint8, rawLoc uint8) bool {
		cfg := Config{
			NumVertices: int(rawN)%200 + 10,
			AvgDegree:   4,
			Skew:        0.2 + 0.6*float64(rawSkew)/255,
			Locality:    float64(rawLoc) / 255,
			Window:      8,
			Seed:        seed,
		}
		g, err := ChungLu(cfg)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		ok := true
		g.Edges(func(e graph.Edge) bool {
			if e.Src == e.Dst {
				ok = false
				return false
			}
			return true
		})
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(graph.VertexID(v)) < 1 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawDstWindowWraps(t *testing.T) {
	rng := xrand.New(1)
	alias := xrand.NewAlias([]float64{1, 1, 1, 1, 1})
	cfg := Config{Locality: 1.0, Window: 2}
	for i := 0; i < 1000; i++ {
		dst := drawDst(rng, alias, 0, 5, cfg, nil, nil, nil)
		if dst < 0 || dst >= 5 || dst == 0 {
			t.Fatalf("bad local draw %d", dst)
		}
	}
}

func TestDrawDstCommunity(t *testing.T) {
	rng := xrand.New(2)
	alias := xrand.NewAlias([]float64{1, 1, 1, 1})
	cfg := Config{CommunityProb: 1.0}
	community := []int32{0, 0, 1, 1}
	members := [][]int32{{0, 1}, {2, 3}}
	for i := 0; i < 500; i++ {
		dst := drawDst(rng, alias, 0, 4, cfg, community, members, make([]*xrand.Alias, 2))
		if dst != 1 {
			t.Fatalf("community draw from 0 gave %d, want 1", dst)
		}
	}
}

func TestCommunityEdgesClusterInCommunities(t *testing.T) {
	g, err := ChungLu(Config{
		NumVertices: 4000, AvgDegree: 12, Skew: 0.7,
		CommunityProb: 0.9, Communities: 20, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 90% community edges and 20 communities, far more than the
	// random baseline 1/20 of edges stay within a community.
	same, total := 0, 0
	g.Edges(func(e graph.Edge) bool {
		cs := mix64(uint64(e.Src)^21^0xC0FFEE) % 20
		cd := mix64(uint64(e.Dst)^21^0xC0FFEE) % 20
		if cs == cd {
			same++
		}
		total++
		return true
	})
	if frac := float64(same) / float64(total); frac < 0.5 {
		t.Fatalf("intra-community edge fraction %v, want ≥ 0.5", frac)
	}
}

func TestConfigCommunityValidation(t *testing.T) {
	bad := []Config{
		{NumVertices: 10, AvgDegree: 1, Skew: 0.5, CommunityProb: -0.1},
		{NumVertices: 10, AvgDegree: 1, Skew: 0.5, CommunityProb: 0.6, Locality: 0.6},
		{NumVertices: 10, AvgDegree: 1, Skew: 0.5, Communities: -1},
	}
	for i, cfg := range bad {
		if _, err := ChungLu(cfg); err == nil {
			t.Errorf("case %d: invalid community config accepted", i)
		}
	}
}

func BenchmarkChungLu50k(b *testing.B) {
	cfg := Config{NumVertices: 50000, AvgDegree: 20, Skew: 0.75, Locality: 0.4, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChungLu(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBarabasiAlbertDeterministic pins the same-seed rerun guarantee the
// generator lost for years to a map-ordered attachment loop: the chosen
// targets were attached (and fed back into the sampling pool) in map
// iteration order, so identical seeds grew different graphs.
func TestBarabasiAlbertDeterministic(t *testing.T) {
	g1, err1 := BarabasiAlbert(1500, 5, 7)
	g2, err2 := BarabasiAlbert(1500, 5, 7)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.EdgeList(), g2.EdgeList()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// Package gen generates synthetic graphs that stand in for the paper's
// datasets (LiveJournal, Twitter, Friendster; Table 1). The originals are
// multi-billion-edge web downloads that are unavailable offline, so the
// experiment harness uses scale-free generators with matched average degree
// and a power-law degree profile.
//
// Two properties of the real graphs drive every effect the paper measures,
// and both are reproduced here:
//
//  1. Scale-free degrees — a small set of hubs holds a large share of all
//     edges, so balancing one dimension (vertices or edges) skews the other
//     (§2.3 Limitation #1).
//  2. ID/degree correlation and ID locality — in social networks low vertex
//     IDs belong to old, high-degree accounts and many edges connect nearby
//     IDs. The first makes Chunk-V edge-skewed (the hub chunk), the second
//     gives contiguous-chunk and Fennel partitions their edge-cut advantage
//     over Hash (§2.3 Limitation #2).
package gen

import (
	"fmt"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Config parameterizes the ranked Chung–Lu generator.
type Config struct {
	// NumVertices is the vertex count n.
	NumVertices int
	// AvgDegree is the target average out-degree d̄; the generator emits
	// ≈ n·d̄ arcs.
	AvgDegree float64
	// Skew s in (0,1) is the rank exponent: vertex v gets weight
	// (v+1)^(-s). Larger s ⇒ heavier hubs. s relates to the degree
	// distribution tail exponent β by s = 1/(β−1); social graphs have
	// β ≈ 2.1–2.5, i.e. s ≈ 0.65–0.9.
	Skew float64
	// Locality is the probability that an arc's destination is drawn from
	// a window of nearby vertex IDs instead of globally by weight.
	Locality float64
	// Window is the half-width of the locality window.
	Window int
	// CommunityProb is the probability that an arc's destination is a
	// uniform member of the source's community. Communities are
	// hash-scattered across the ID space, so contiguous chunking cuts
	// ~(k−1)/k of community edges while affinity-based streaming
	// (Fennel, BPart) can discover and keep them — the structure behind
	// the paper's Fennel edge-cut advantage (Table 3).
	CommunityProb float64
	// Communities is the number of communities (membership =
	// hash(v) mod Communities). 0 derives ≈ n/250 communities.
	Communities int
	// MinOutDegree floors every vertex's out-degree (default 1 via
	// Normalize) so random walkers never start on a dead end.
	MinOutDegree int
	// MaxDegreeShare caps any single vertex's out-degree at this fraction
	// of the total edge count. Real social graphs obey such a cap (the
	// largest Twitter account holds ≈0.2% of all follower edges); without
	// it a small-scale power-law sample concentrates implausibly much
	// mass in vertex 0. Default 0.002; set ≥ 1 to disable.
	MaxDegreeShare float64
	// Shuffle, when true, relabels vertices with a random permutation,
	// destroying the ID/degree correlation. Used by ablation tests.
	Shuffle bool
	// Seed drives all randomness.
	Seed uint64
}

// Normalize fills defaults and validates; it returns an error describing the
// first invalid field.
func (c *Config) Normalize() error {
	if c.NumVertices <= 0 {
		return fmt.Errorf("gen: NumVertices = %d, want > 0", c.NumVertices)
	}
	if c.AvgDegree <= 0 {
		return fmt.Errorf("gen: AvgDegree = %v, want > 0", c.AvgDegree)
	}
	if c.Skew <= 0 || c.Skew >= 1 {
		return fmt.Errorf("gen: Skew = %v, want in (0,1)", c.Skew)
	}
	if c.Locality < 0 || c.Locality > 1 {
		return fmt.Errorf("gen: Locality = %v, want in [0,1]", c.Locality)
	}
	if c.CommunityProb < 0 || c.CommunityProb+c.Locality > 1 {
		return fmt.Errorf("gen: CommunityProb = %v with Locality %v, want non-negative and summing ≤ 1",
			c.CommunityProb, c.Locality)
	}
	if c.Communities == 0 {
		c.Communities = c.NumVertices/250 + 1
	}
	if c.Communities < 0 {
		return fmt.Errorf("gen: Communities = %d, want > 0", c.Communities)
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.MinOutDegree == 0 {
		c.MinOutDegree = 1
	}
	if c.MinOutDegree < 0 {
		return fmt.Errorf("gen: MinOutDegree = %d, want >= 0", c.MinOutDegree)
	}
	if c.MaxDegreeShare == 0 {
		c.MaxDegreeShare = 0.002
	}
	if c.MaxDegreeShare < 0 {
		return fmt.Errorf("gen: MaxDegreeShare = %v, want > 0", c.MaxDegreeShare)
	}
	return nil
}

// ChungLu generates a directed scale-free graph under the ranked Chung–Lu
// model: vertex v has weight (v+1)^(-Skew); its out-degree is the weight's
// share of n·AvgDegree arcs, and each arc's destination is drawn
// proportionally to weight (globally) or uniformly from a nearby ID window
// (with probability Locality).
func ChungLu(cfg Config) (*graph.Graph, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	n := cfg.NumVertices
	rng := xrand.New(cfg.Seed)
	weights := xrand.PowerLawWeights(n, cfg.Skew, 1)
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	targetArcs := cfg.AvgDegree * float64(n)
	alias := xrand.NewAlias(weights)

	maxDeg := int(cfg.MaxDegreeShare * targetArcs)
	if maxDeg < cfg.MinOutDegree+1 {
		maxDeg = cfg.MinOutDegree + 1
	}
	degs := make([]int, n)
	assigned := 0
	for v := 0; v < n; v++ {
		deg := int(weights[v]/totalW*targetArcs + 0.5)
		if deg > maxDeg {
			deg = maxDeg
		}
		if deg < cfg.MinOutDegree {
			deg = cfg.MinOutDegree
		}
		degs[v] = deg
		assigned += deg
	}
	// Redistribute the mass trimmed by the degree cap so the average
	// degree stays on target: add one edge per pass to every vertex below
	// the cap until the deficit is gone.
	for deficit := int(targetArcs) - assigned; deficit > 0; {
		progress := false
		for v := 0; v < n && deficit > 0; v++ {
			if degs[v] < maxDeg {
				degs[v]++
				deficit--
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Community membership: hash-scattered so communities are invisible
	// to ID-contiguous chunking. Within a community, endpoints are drawn
	// proportionally to the members' global weights — communities are
	// themselves scale-free, anchored on their own hubs, as in real
	// social graphs.
	var members [][]int32
	var community []int32
	var commAlias []*xrand.Alias
	if cfg.CommunityProb > 0 {
		members = make([][]int32, cfg.Communities)
		community = make([]int32, n)
		for v := 0; v < n; v++ {
			c := int32(mix64(uint64(v)^cfg.Seed^0xC0FFEE) % uint64(cfg.Communities))
			community[v] = c
			members[c] = append(members[c], int32(v))
		}
		commAlias = make([]*xrand.Alias, cfg.Communities)
		for c, ms := range members {
			if len(ms) == 0 {
				continue
			}
			// Mild within-community rank skew: each community has its
			// own hubs (its earliest members), independent of the
			// global hub ranking.
			commAlias[c] = xrand.NewAlias(xrand.PowerLawWeights(len(ms), 0.6, 1))
		}
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < degs[v]; i++ {
			dst := drawDst(rng, alias, v, n, cfg, community, members, commAlias)
			b.AddEdge(graph.VertexID(v), graph.VertexID(dst))
		}
	}
	g := b.Build()
	if cfg.Shuffle {
		g = Relabel(g, rng.Perm(n))
	}
	return g, nil
}

// drawDst picks an arc destination from the three-way mixture: a uniform
// member of the source's community (probability CommunityProb), a uniform
// ID within the locality window (probability Locality), or a global
// weight-proportional draw. Self-loops are retried a few times and then
// redirected to a neighbor ID.
func drawDst(rng *xrand.RNG, alias *xrand.Alias, src, n int, cfg Config, community []int32, members [][]int32, commAlias []*xrand.Alias) int {
	for attempt := 0; attempt < 4; attempt++ {
		var dst int
		u := rng.Float64()
		switch {
		case u < cfg.CommunityProb && community != nil:
			c := community[src]
			if ca := commAlias[c]; ca != nil && len(members[c]) > 1 {
				dst = int(members[c][ca.Sample(rng)])
			} else {
				ms := members[c]
				dst = int(ms[rng.Intn(len(ms))])
			}
		case u < cfg.CommunityProb+cfg.Locality:
			off := rng.Intn(2*cfg.Window+1) - cfg.Window
			dst = ((src+off)%n + n) % n
		default:
			dst = alias.Sample(rng)
		}
		if dst != src {
			return dst
		}
	}
	return (src + 1) % n
}

// mix64 is the splitmix64 finalizer used for community hashing.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Relabel renames vertex v to perm[v] and rebuilds the graph. perm must be
// a permutation of [0, NumVertices).
func Relabel(g *graph.Graph, perm []int) *graph.Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("gen: perm length %d != |V| %d", len(perm), n))
	}
	b := graph.NewBuilder(n)
	g.Edges(func(e graph.Edge) bool {
		b.AddEdge(graph.VertexID(perm[e.Src]), graph.VertexID(perm[e.Dst]))
		return true
	})
	return b.Build()
}

package gen

import (
	"fmt"

	"bpart/internal/graph"
)

// Dataset names the synthetic stand-ins for the paper's Table 1 graphs.
type Dataset string

const (
	// LJSim stands in for LiveJournal (7.5M vertices, 225M edges, d̄≈30).
	LJSim Dataset = "lj-sim"
	// TwitterSim stands in for Twitter (41.4M vertices, 1.48B edges, d̄≈36).
	TwitterSim Dataset = "twitter-sim"
	// FriendsterSim stands in for Friendster (65.6M vertices, 3.6B edges, d̄≈55).
	FriendsterSim Dataset = "friendster-sim"
)

// Datasets lists the presets in the order the paper's tables use.
func Datasets() []Dataset { return []Dataset{LJSim, TwitterSim, FriendsterSim} }

// PresetConfig returns the generator configuration for a dataset at the
// given scale. scale=1 yields the default experiment sizes (10⁵-vertex
// graphs with the paper's average degrees); smaller scales shrink the vertex
// count proportionally for unit tests. Average degree, skew and locality are
// scale-independent so the partitioning phenomenology is preserved.
func PresetConfig(d Dataset, scale float64) (Config, error) {
	if scale <= 0 {
		return Config{}, fmt.Errorf("gen: scale %v, want > 0", scale)
	}
	// Community fractions follow the paper's Table 3: Fennel clusters
	// Twitter and Friendster well (cut ≈ 0.33/0.36) but LiveJournal
	// poorly (0.65), so lj-sim gets weaker community structure.
	base := map[Dataset]Config{
		LJSim:         {NumVertices: 100_000, AvgDegree: 30, Skew: 0.70, Locality: 0.30, CommunityProb: 0.30, Seed: 1},
		TwitterSim:    {NumVertices: 150_000, AvgDegree: 36, Skew: 0.78, Locality: 0.15, CommunityProb: 0.55, Seed: 2},
		FriendsterSim: {NumVertices: 200_000, AvgDegree: 55, Skew: 0.66, Locality: 0.15, CommunityProb: 0.55, Seed: 3},
	}
	cfg, ok := base[d]
	if !ok {
		return Config{}, fmt.Errorf("gen: unknown dataset %q", d)
	}
	cfg.NumVertices = int(float64(cfg.NumVertices) * scale)
	if cfg.NumVertices < 16 {
		cfg.NumVertices = 16
	}
	// Locality window and community count scale with the graph so the
	// community-to-part size ratio — what determines cut ratios — is
	// scale-invariant.
	cfg.Window = cfg.NumVertices/50 + 1
	cfg.Communities = cfg.NumVertices/250 + 1
	return cfg, nil
}

// Preset generates a dataset at the given scale.
func Preset(d Dataset, scale float64) (*graph.Graph, error) {
	cfg, err := PresetConfig(d, scale)
	if err != nil {
		return nil, err
	}
	return ChungLu(cfg)
}

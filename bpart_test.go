package bpart

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func smallTwitter(t testing.TB) *Graph {
	t.Helper()
	g, err := Preset(TwitterSim, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeGraphBuilding(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("built %v", g)
	}
	g2 := FromAdjacency([][]VertexID{{1}, {2}, {}})
	if g2.NumEdges() != 2 {
		t.Fatalf("adjacency graph %v", g2)
	}
	s := Stats(g2)
	if s.NumVertices != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFacadeGraphFileRoundTrip(t *testing.T) {
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {}})
	path := filepath.Join(t.TempDir(), "g.bg")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost edges: %v vs %v", back, g)
	}
}

func TestFacadePresets(t *testing.T) {
	for _, d := range Datasets() {
		g, err := Preset(d, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s empty", d)
		}
	}
}

func TestFacadeSchemesComplete(t *testing.T) {
	want := []string{"BPart", "Chunk-E", "Chunk-V", "Fennel", "GD", "Hash", "LDG", "Multilevel", "Spinner"}
	got := Schemes()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Schemes() = %v, want %v", got, want)
	}
}

func TestFacadePartitionAndEvaluate(t *testing.T) {
	g := smallTwitter(t)
	for _, scheme := range Schemes() {
		a, err := Partition(g, scheme, 4)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		r, err := Evaluate(g, a)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r.K != 4 {
			t.Fatalf("%s: report K = %d", scheme, r.K)
		}
	}
	if _, err := Partition(g, "nope", 4); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestFacadeBPartIsBalanced(t *testing.T) {
	g := smallTwitter(t)
	bp, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.VertexBias > 0.15 || r.EdgeBias > 0.15 {
		t.Fatalf("BPart not 2D balanced: %+v", r)
	}
}

func TestFacadeEngines(t *testing.T) {
	g := smallTwitter(t)
	a, err := Partition(g, "BPart", 4)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ie.PageRank(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Ranks) != g.NumVertices() {
		t.Fatalf("PageRank ranks length %d", len(pr.Ranks))
	}
	cc, err := ie.ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Components < 1 {
		t.Fatalf("components = %d", cc.Components)
	}
	sssp, err := ie.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	if sssp.Reached == 0 {
		t.Fatal("SSSP reached nothing")
	}
	core, err := ie.KCore(2)
	if err != nil {
		t.Fatal(err)
	}
	if core.CoreSize == 0 {
		t.Fatal("2-core empty on a dense graph")
	}
	bfs, err := ie.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Reached == 0 {
		t.Fatal("BFS reached nothing")
	}
	we, err := NewWalkEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := we.Run(WalkConfig{Kind: DeepWalk, WalkersPerVertex: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps == 0 {
		t.Fatal("walk executed no steps")
	}
}

func TestFacadeEngineRejectsInvalidAssignment(t *testing.T) {
	g := smallTwitter(t)
	bad := &Assignment{Parts: []int{0}, K: 2}
	if _, err := NewIterationEngine(g, bad, DefaultCostModel()); err == nil {
		t.Fatal("invalid assignment accepted by iteration engine")
	}
	if _, err := NewWalkEngine(g, bad, DefaultCostModel()); err == nil {
		t.Fatal("invalid assignment accepted by walk engine")
	}
	if _, err := Evaluate(g, bad); err == nil {
		t.Fatal("invalid assignment accepted by Evaluate")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestExperimentsSmoke runs every experiment at a tiny scale: the harness
// must complete and produce rows even on minuscule graphs.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	opt := ExperimentOptions{Scale: 0.02}
	for _, id := range Experiments() {
		id := id
		t.Run(strings.ReplaceAll(id, " ", "_"), func(t *testing.T) {
			tbl, err := RunExperiment(id, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			if tbl.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

// TestFullPipeline drives the complete user workflow end to end: generate
// → persist graph → reload → partition → persist assignment → reload →
// place on a cluster → run applications → train embeddings from walks.
func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	dir := t.TempDir()
	g0, err := Generate(GenConfig{
		NumVertices: 3000, AvgDegree: 10, Skew: 0.75,
		Locality: 0.2, CommunityProb: 0.4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	gpath := filepath.Join(dir, "g.bg.gz")
	if err := WriteGraphFile(gpath, g0); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraphFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != g0.NumEdges() {
		t.Fatalf("graph persistence lost edges: %d vs %d", g.NumEdges(), g0.NumEdges())
	}
	a0, err := Partition(g, "BPart", 4)
	if err != nil {
		t.Fatal(err)
	}
	apath := filepath.Join(dir, "g.parts")
	if err := WriteAssignmentFile(apath, a0); err != nil {
		t.Fatal(err)
	}
	a, err := ReadAssignmentFile(apath)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.VertexBias > 0.2 || r.EdgeBias > 0.2 {
		t.Fatalf("persisted partition unbalanced: %+v", r)
	}
	ie, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ie.PageRank(3, 0.85); err != nil {
		t.Fatal(err)
	}
	we, err := NewWalkEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := we.Run(WalkConfig{
		Kind: DeepWalk, WalkersPerVertex: 2, Steps: 8, Seed: 5, CollectPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := TrainEmbeddings(res.Paths, g.NumVertices(), EmbedConfig{Dim: 8, Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if emb.NumVertices() != g.NumVertices() {
		t.Fatalf("embeddings for %d vertices, want %d", emb.NumVertices(), g.NumVertices())
	}
	if len(emb.MostSimilar(0, 3)) != 3 {
		t.Fatal("similarity query failed")
	}
}

// TestMonteCarloPageRankAgreement cross-validates the two engines: visit
// frequencies of many random-walk-with-jump walkers approximate PageRank,
// so the top vertices found by the walk engine must largely coincide with
// the top vertices found by the iteration engine's power method.
func TestMonteCarloPageRankAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	g, err := Preset(TwitterSim, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, "BPart", 4)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ie.PageRank(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	we, err := NewWalkEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// RWJ with jump probability 0.15 is the Monte-Carlo analogue of
	// damping 0.85.
	mc, err := we.Run(WalkConfig{
		Kind: RWJ, WalkersPerVertex: 10, Steps: 30, JumpProb: 0.15, Seed: 9, TrackVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	topOf := func(score func(v int) float64) map[int]bool {
		idx := make([]int, g.NumVertices())
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(p, q int) bool { return score(idx[p]) > score(idx[q]) })
		top := map[int]bool{}
		for _, v := range idx[:50] {
			top[v] = true
		}
		return top
	}
	topPR := topOf(func(v int) float64 { return pr.Ranks[v] })
	topMC := topOf(func(v int) float64 { return float64(mc.Visits[v]) })
	overlap := 0
	for v := range topPR {
		if topMC[v] {
			overlap++
		}
	}
	if overlap < 30 {
		t.Fatalf("top-50 overlap between power iteration and Monte-Carlo walks = %d, want ≥ 30", overlap)
	}
}

// TestPaperShapes asserts the qualitative results of the paper's headline
// tables at a small but non-trivial scale.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	g, err := Preset(TwitterSim, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	reports := map[string]Report{}
	for _, scheme := range []string{"Chunk-V", "Chunk-E", "Fennel", "Hash", "BPart"} {
		a, err := Partition(g, scheme, k)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Evaluate(g, a)
		if err != nil {
			t.Fatal(err)
		}
		reports[scheme] = r
	}
	// Fig 10 shape: BPart balanced in both dimensions, others not.
	if r := reports["BPart"]; r.VertexBias > 0.15 || r.EdgeBias > 0.15 {
		t.Errorf("BPart biases (%v, %v), want both ≤ 0.15", r.VertexBias, r.EdgeBias)
	}
	if reports["Chunk-V"].EdgeBias < 0.5 {
		t.Errorf("Chunk-V edge bias %v, want skewed", reports["Chunk-V"].EdgeBias)
	}
	if reports["Chunk-E"].VertexBias < 0.5 {
		t.Errorf("Chunk-E vertex bias %v, want skewed", reports["Chunk-E"].VertexBias)
	}
	// Table 3 shape: BPart cuts far fewer edges than Hash; Hash ≈ 7/8.
	if reports["BPart"].CutRatio >= reports["Hash"].CutRatio-0.1 {
		t.Errorf("BPart cut %v not clearly below Hash %v", reports["BPart"].CutRatio, reports["Hash"].CutRatio)
	}
	// Fig 13 shape: BPart's waiting ratio far below Chunk-V's.
	waits := map[string]float64{}
	for _, scheme := range []string{"Chunk-V", "BPart"} {
		a, err := Partition(g, scheme, k)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewWalkEngine(g, a, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(WalkConfig{Kind: SimpleWalk, WalkersPerVertex: 5, Steps: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		waits[scheme] = res.Stats.WaitRatio()
	}
	if waits["BPart"] >= waits["Chunk-V"]/2 {
		t.Errorf("BPart wait ratio %v not well below Chunk-V %v", waits["BPart"], waits["Chunk-V"])
	}
}

func TestFacadeServing(t *testing.T) {
	g := smallTwitter(t)
	a, err := Partition(g, "BPart", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewServingBackend(g, a.Parts, a.K)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rec := NewServingRecorder(a.K, &buf, NewMetrics())
	srv := &ServingServer{B: b, R: rec}
	reqs, err := ServingWorkload{Seed: 7, Vertices: g.NumVertices(), Requests: 50, ZipfS: 1.1, LookupW: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Play(reqs); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadRequestLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep := SummarizeServing(l)
	if rep.Total != 50 || rep.Routed != 50 {
		t.Fatalf("report = %+v", rep)
	}
	attrib, err := AttributeServing(l, a.Parts, a.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	var routed int64
	for _, at := range attrib {
		routed += at.Requests
	}
	if routed != 50 {
		t.Fatalf("attribution covers %d of 50 requests", routed)
	}
}

package bpart

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// EnableFaults wires a schedule into both engine families through the
// facade; a crashed-and-recovered PageRank run must still match the
// fault-free ranks bit for bit (the tentpole invariant, end to end).
func TestFacadeEnableFaults(t *testing.T) {
	g := smallTwitter(t)
	a, err := Partition(g, "BPart", 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := must(NewIterationEngine(g, a, DefaultCostModel())).PageRank(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}

	ie, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	spec := &FaultSpec{
		CheckpointEvery: 2,
		Events:          []FaultEvent{{Kind: CrashFault, Step: 4, Machine: 1}},
	}
	ctl, err := EnableFaults(ie, spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	if !Instrument(ctl, NopTrace(), reg) {
		t.Fatal("controller rejected instrumentation")
	}
	pr, err := ie.PageRank(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Recovery == nil || pr.Recovery.Crashes != 1 {
		t.Fatalf("Recovery = %+v", pr.Recovery)
	}
	for v := range base.Ranks {
		if base.Ranks[v] != pr.Ranks[v] {
			t.Fatalf("rank[%d] differs after recovery", v)
		}
	}
	if reg.Counter("fault_crashes_total").Value() != 1 {
		t.Fatal("fault counters not published")
	}

	we, err := NewWalkEngine(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnableFaults(we, spec.Clone()); err != nil {
		t.Fatal(err)
	}
	wr, err := we.Run(WalkConfig{Kind: SimpleWalk, WalkersPerVertex: 1, Steps: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Recovery == nil || wr.Recovery.Crashes != 1 {
		t.Fatalf("walk Recovery = %+v", wr.Recovery)
	}

	if _, err := EnableFaults("not an engine", spec); err == nil {
		t.Fatal("non-engine accepted")
	}
}

// The facade's spec I/O round-trips a scenario file, and RandomFaultSpec
// is a pure function of its config.
func TestFacadeFaultSpecIO(t *testing.T) {
	s, err := RandomFaultSpec(FaultRandomConfig{
		Seed: 11, Machines: 4, Horizon: 8,
		CrashProb: 0.4, SlowProb: 0.5, LossProb: 0.5,
		Policy: RestreamPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RandomFaultSpec(FaultRandomConfig{
		Seed: 11, Machines: 4, Horizon: 8,
		CrashProb: 0.4, SlowProb: 0.5, LossProb: 0.5,
		Policy: RestreamPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	var one, two strings.Builder
	if err := s.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("same seed, different schedules")
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFaultSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != RestreamPolicy || len(back.Events) != len(s.Events) {
		t.Fatalf("round trip lost schedule: %+v", back)
	}
	if _, err := ReadFaultSpecFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func must(e *IterationEngine, err error) *IterationEngine {
	if err != nil {
		panic(err)
	}
	return e
}

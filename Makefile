GO ?= go

.PHONY: all build lint test race bench

all: build lint test

build:
	$(GO) build ./...

# lint mirrors the CI lint job exactly: formatting, go vet, then the
# repo's own analyzer suite (see internal/analysis and README "Static
# analysis").
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/bpartlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

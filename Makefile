GO ?= go

.PHONY: all build lint test race bench baselines

all: build lint test

build:
	$(GO) build ./...

# lint mirrors the CI lint job exactly: formatting, go vet, then the
# repo's own analyzer suite (see internal/analysis and README "Static
# analysis").
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@echo "bpartlint analyzers:"
	@$(GO) run ./cmd/bpartlint -list
	$(GO) run ./cmd/bpartlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# baselines regenerates the committed perf baselines CI diffs against
# (see the observability job in .github/workflows/ci.yml). Run after an
# intentional performance change and commit the result; the BENCH artifact
# is -deterministic, so an unchanged simulation reproduces it byte for
# byte.
baselines:
	$(GO) run ./cmd/bench -scale 0.05 -id "Fig 13" \
		-trace baselines/trace_fig13.jsonl \
		-json baselines/BENCH_bpart.json -deterministic

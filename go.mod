module bpart

go 1.22

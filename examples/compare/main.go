// Compare: the full partitioner comparison across all three synthetic
// datasets — the paper's Fig 10 / Table 3 view — plus the BPart layer
// trace, showing the over-split-then-combine process converging.
package main

import (
	"fmt"
	"log"

	"bpart"
)

func main() {
	const k = 8
	fmt.Printf("%-16s %-11s %8s %8s %8s  %s\n", "graph", "scheme", "Vbias", "Ebias", "cut", "")
	for _, d := range bpart.Datasets() {
		g, err := bpart.Preset(d, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		for _, scheme := range bpart.Schemes() {
			a, err := bpart.Partition(g, scheme, k)
			if err != nil {
				log.Fatal(err)
			}
			r, err := bpart.Evaluate(g, a)
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if r.VertexBias <= 0.1 && r.EdgeBias <= 0.1 {
				marker = "<- 2D balanced"
			}
			fmt.Printf("%-16s %-11s %8.4f %8.4f %8.4f  %s\n",
				d, scheme, r.VertexBias, r.EdgeBias, r.CutRatio, marker)
		}
	}

	// Show BPart's two-phase process layer by layer on twitter-sim.
	g, err := bpart.Preset(bpart.TwitterSim, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := bpart.New(bpart.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	_, trace, err := bp.PartitionWithTrace(g, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBPart layer trace (twitter-sim, k=%d):\n", k)
	for _, l := range trace.Layers {
		fmt.Printf("  layer %d: over-split remaining graph into %d pieces, combined, froze %d balanced subgraphs (%d still unbalanced)\n",
			l.Layer, l.Pieces, l.Finalized, l.RemainingNr)
	}
}

// Randomwalk: the paper's motivating workload. Runs DeepWalk on the
// KnightKing-like simulated cluster under every partitioning scheme and
// shows how the two-dimensional balance of BPart turns into less waiting
// time and a shorter run (Figs 13 and 14).
package main

import (
	"fmt"
	"log"

	"bpart"
)

func main() {
	g, err := bpart.Preset(bpart.TwitterSim, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", bpart.Stats(g))
	const machines = 8

	fmt.Printf("\nDeepWalk, %d machines, 1 walker/vertex, 10 steps:\n", machines)
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "scheme", "sim time", "wait ratio", "msg walks", "steps")

	var baseline float64
	for _, scheme := range []string{"Chunk-V", "Chunk-E", "Fennel", "Hash", "BPart"} {
		a, err := bpart.Partition(g, scheme, machines)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := bpart.NewWalkEngine(g, a, bpart.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(bpart.WalkConfig{
			Kind:             bpart.DeepWalk,
			WalkersPerVertex: 1,
			Steps:            10,
			Seed:             7,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := res.Stats.TotalTime()
		if scheme == "Chunk-V" {
			baseline = total
		}
		fmt.Printf("%-10s %11.1f ms %14.3f %12d %12d   (%.2fx Chunk-V)\n",
			scheme, total/1000, res.Stats.WaitRatio(), res.MessageWalks, res.TotalSteps, total/baseline)
	}

	// Second-order walks: node2vec with return parameter p and in-out q,
	// sampled with KnightKing-style rejection sampling.
	a, err := bpart.Partition(g, "BPart", machines)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bpart.NewWalkEngine(g, a, bpart.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	n2v, err := eng.Run(bpart.WalkConfig{
		Kind:             bpart.Node2Vec,
		WalkersPerVertex: 1,
		Steps:            10,
		P:                4,
		Q:                0.25,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode2vec (p=4, q=0.25) on BPart: %.1f ms simulated, %d steps, %d message walks\n",
		n2v.Stats.TotalTime()/1000, n2v.TotalSteps, n2v.MessageWalks)
}

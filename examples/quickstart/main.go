// Quickstart: build a small graph, partition it with BPart, and inspect
// the two-dimensional balance and edge-cut quality.
package main

import (
	"fmt"
	"log"

	"bpart"
)

func main() {
	// Generate a scale-free graph: 20k vertices, average degree 16,
	// power-law hubs, community structure.
	g, err := bpart.Generate(bpart.GenConfig{
		NumVertices:   20_000,
		AvgDegree:     16,
		Skew:          0.75,
		Locality:      0.2,
		CommunityProb: 0.4,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", bpart.Stats(g))

	// Partition into 8 two-dimensionally balanced subgraphs.
	bp, err := bpart.New(bpart.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a, err := bp.Partition(g, 8)
	if err != nil {
		log.Fatal(err)
	}
	report, err := bpart.Evaluate(g, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BPart:")
	fmt.Println(report)

	// Compare with the classic one-dimensional baseline used by Gemini.
	cv, err := bpart.Partition(g, "Chunk-V", 8)
	if err != nil {
		log.Fatal(err)
	}
	cvReport, err := bpart.Evaluate(g, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Chunk-V (vertex-balanced only):")
	fmt.Println(cvReport)

	fmt.Printf("\nBPart edge bias %.3f vs Chunk-V edge bias %.3f — both dimensions stay balanced.\n",
		report.EdgeBias, cvReport.EdgeBias)
}

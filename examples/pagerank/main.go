// Pagerank: the Gemini-like iteration engine. Runs PageRank and Connected
// Components under Chunk-V, Hash and BPart placements and reports per-
// machine compute balance and simulated running time (Figs 14/15 for the
// iteration-based applications).
//
// With -trace out.jsonl the engines stream telemetry: one run-level span
// per algorithm (engine.pagerank, engine.cc) and one cluster.superstep
// record per BSP iteration carrying the per-machine IterationStats. With
// -workers N the supersteps run on an N-worker goroutine pool; every
// number printed is bit-identical to the sequential run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"bpart"
)

func main() {
	tracePath := flag.String("trace", "", "write a JSONL telemetry trace to this file")
	workers := flag.Int("workers", 0, "superstep worker-pool size (0 or 1 = sequential; results are bit-identical at any setting)")
	flag.Parse()

	tracer := bpart.NopTrace()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		jl := bpart.NewJSONLTrace(f)
		tracer = jl
		defer func() {
			jl.Close()
			f.Close()
		}()
	}
	reg := bpart.NewMetrics()

	g, err := bpart.Preset(bpart.LJSim, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", bpart.Stats(g))
	const machines = 8

	for _, scheme := range []string{"Chunk-V", "Hash", "BPart"} {
		a, err := bpart.Partition(g, scheme, machines)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := bpart.NewIterationEngine(g, a, bpart.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		eng.Cluster().SetWorkers(*workers)
		bpart.Instrument(eng, tracer, reg)
		pr, err := eng.PageRank(10, 0.85)
		if err != nil {
			log.Fatal(err)
		}
		cc, err := eng.ConnectedComponents(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", scheme)
		fmt.Printf("  PageRank(10 iters): %8.1f ms simulated, wait ratio %.3f, %d messages\n",
			pr.Stats.TotalTime()/1000, pr.Stats.WaitRatio(), pr.Stats.TotalMessages())
		fmt.Printf("  CC (%d components, %d iters): %8.1f ms simulated, wait ratio %.3f\n",
			cc.Components, len(cc.Stats.Iterations), cc.Stats.TotalTime()/1000, cc.Stats.WaitRatio())

		if scheme == "BPart" {
			top := topRanks(pr.Ranks, 5)
			fmt.Printf("  top PageRank vertices: %v (hubs have low IDs by construction)\n", top)
		}
	}
}

func topRanks(ranks []float64, n int) []int {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	return idx[:n]
}

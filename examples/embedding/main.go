// Embedding: generate a DeepWalk / node2vec training corpus — the actual
// downstream purpose of the paper's random-walk workloads. The engine
// collects every walker's full vertex sequence; a skip-gram trainer would
// consume these lines directly.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"bpart"
)

func main() {
	g, err := bpart.Preset(bpart.TwitterSim, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	a, err := bpart.Partition(g, "BPart", 8)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bpart.NewWalkEngine(g, a, bpart.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(bpart.WalkConfig{
		Kind:             bpart.Node2Vec,
		WalkersPerVertex: 2,
		Steps:            8,
		P:                2,
		Q:                0.5,
		Seed:             11,
		CollectPaths:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d walks, %d total steps, %.1f ms simulated\n",
		len(res.Paths), res.TotalSteps, res.Stats.TotalTime()/1000)

	out, err := os.CreateTemp("", "bpart-corpus-*.txt")
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(out)
	for _, path := range res.Paths {
		for i, v := range path {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus written to %s\n", out.Name())

	// Show the first few walks.
	for i := 0; i < 3 && i < len(res.Paths); i++ {
		fmt.Printf("walk %d: %v\n", i, res.Paths[i])
	}

	// Train skip-gram embeddings on the corpus and query similarities —
	// the full DeepWalk pipeline.
	emb, err := bpart.TrainEmbeddings(res.Paths, g.NumVertices(), bpart.EmbedConfig{
		Dim: 32, Epochs: 1, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	const query = 100
	fmt.Printf("\nvertices most similar to %d (by embedding cosine): %v\n",
		query, emb.MostSimilar(query, 5))
}

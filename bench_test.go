package bpart

import (
	"io"
	"os"
	"strconv"
	"testing"
)

// benchScale controls the dataset size the experiment benchmarks run at.
// The default 0.05 keeps `go test -bench=.` to a few minutes; set
// BPART_BENCH_SCALE=1.0 to benchmark at the full EXPERIMENTS.md size.
func benchScale() float64 {
	if s := os.Getenv("BPART_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

// benchExperiment runs one paper table/figure per iteration. The first
// iteration pays the dataset/partition generation; later iterations hit the
// memoized graphs, so allocations reported are the experiment's own.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := ExperimentOptions{Scale: benchScale()}
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkFig03(b *testing.B)        { benchExperiment(b, "Fig 3") }
func BenchmarkFig04(b *testing.B)        { benchExperiment(b, "Fig 4") }
func BenchmarkFig05(b *testing.B)        { benchExperiment(b, "Fig 5") }
func BenchmarkFig06(b *testing.B)        { benchExperiment(b, "Fig 6") }
func BenchmarkFig08(b *testing.B)        { benchExperiment(b, "Fig 8") }
func BenchmarkFig10(b *testing.B)        { benchExperiment(b, "Fig 10") }
func BenchmarkFig11(b *testing.B)        { benchExperiment(b, "Fig 11") }
func BenchmarkTable1(b *testing.B)       { benchExperiment(b, "Table 1") }
func BenchmarkTable2(b *testing.B)       { benchExperiment(b, "Table 2") }
func BenchmarkMtKaHIP(b *testing.B)      { benchExperiment(b, "S4.2 Mt-KaHIP") }
func BenchmarkConnectivity(b *testing.B) { benchExperiment(b, "S3.3 Connectivity") }
func BenchmarkFig12(b *testing.B)        { benchExperiment(b, "Fig 12") }
func BenchmarkFig13(b *testing.B)        { benchExperiment(b, "Fig 13") }
func BenchmarkFig14(b *testing.B)        { benchExperiment(b, "Fig 14") }
func BenchmarkTable3(b *testing.B)       { benchExperiment(b, "Table 3") }
func BenchmarkFig15(b *testing.B)        { benchExperiment(b, "Fig 15") }

func BenchmarkRelatedWork(b *testing.B) { benchExperiment(b, "S5 Related") }
func BenchmarkVertexCut(b *testing.B)   { benchExperiment(b, "S5 Vertex-cut") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationC(b *testing.B)      { benchExperiment(b, "Ablation C") }
func BenchmarkAblationSplit(b *testing.B)  { benchExperiment(b, "Ablation Split") }
func BenchmarkAblationLayers(b *testing.B) { benchExperiment(b, "Ablation Refine") }
func BenchmarkAblationOrder(b *testing.B)  { benchExperiment(b, "Ablation Order") }
func BenchmarkAblationHetero(b *testing.B) { benchExperiment(b, "Ablation Hetero") }

// Core-operation benchmarks: the partitioners themselves on twitter-sim.

func benchPartition(b *testing.B, scheme string, k int) {
	b.Helper()
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, scheme, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionChunkV(b *testing.B)     { benchPartition(b, "Chunk-V", 8) }
func BenchmarkPartitionChunkE(b *testing.B)     { benchPartition(b, "Chunk-E", 8) }
func BenchmarkPartitionHash(b *testing.B)       { benchPartition(b, "Hash", 8) }
func BenchmarkPartitionFennel(b *testing.B)     { benchPartition(b, "Fennel", 8) }
func BenchmarkPartitionBPart(b *testing.B)      { benchPartition(b, "BPart", 8) }
func BenchmarkPartitionBPart128(b *testing.B)   { benchPartition(b, "BPart", 128) }
func BenchmarkPartitionMultilevel(b *testing.B) { benchPartition(b, "Multilevel", 8) }

// Telemetry overhead: BPart with the default no-op tracer explicitly
// attached must stay within noise (<5%) of the uninstrumented
// BenchmarkPartitionBPart above. Compare with:
//
//	go test -bench 'PartitionBPart$|PartitionTracedNop' -count 10 .
func BenchmarkPartitionTracedNop(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	if !Instrument(p, NopTrace(), nil) {
		b.Fatal("BPart did not accept instrumentation")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Audit overhead: BPart with the audit hooks compiled in but no Auditor
// attached (the default) must stay within noise (<5%) of
// BenchmarkPartitionBPart — the disabled-audit cost is one nil check per
// placement. Compare with:
//
//	go test -bench 'PartitionBPart$|PartitionAuditNop' -count 10 .
func BenchmarkPartitionAuditNop(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	if !Audit(p, nil) {
		b.Fatal("BPart did not accept the audit sink")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// And the live-audit cost (every record marshaled and discarded), for
// reference rather than as a gate.
func BenchmarkPartitionAudited(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	aud, err := NewAuditor(io.Discard, AuditConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if !Audit(p, aud) {
		b.Fatal("BPart did not accept the audit sink")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Resource-probe overhead: BPart with the phase hooks compiled in and a
// no-op probe attached — the worst case for a disabled-but-wired hook
// site, since hooks fire per phase (layers, streams, combine rounds),
// never per vertex. Must stay within noise (<5%) of
// BenchmarkPartitionBPart, the same gate as the audit and fault hooks
// (TestIdleProbeOverheadGate in internal/partition asserts it). Compare
// with:
//
//	go test -bench 'PartitionBPart$|PartitionProbeNop' -count 10 .
func BenchmarkPartitionProbeNop(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	if !InstrumentResources(p, NopResourceProbe()) {
		b.Fatal("BPart did not accept the resource probe")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Fault-hook overhead: the iteration engine with no controller attached
// (the default) versus one with an idle controller — empty schedule,
// interval checkpoints disabled — so only the per-superstep protocol
// branches (Disrupt consultation, EndSuperstep bookkeeping, the one free
// initial snapshot) run. The idle variant must stay within noise (<5%) of
// the plain one. Compare with:
//
//	go test -bench 'PageRankPlain|PageRankFaultIdle' -count 10 .
func benchPageRank(b *testing.B, withIdleFaults bool) {
	b.Helper()
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	a, err := Partition(g, "Chunk-V", 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	if withIdleFaults {
		// CheckpointEvery -1 disables interval checkpoints; no events means
		// nothing ever fires.
		if _, err := EnableFaults(e, &FaultSpec{CheckpointEvery: -1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PageRank(10, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankPlain(b *testing.B)     { benchPageRank(b, false) }
func BenchmarkPageRankFaultIdle(b *testing.B) { benchPageRank(b, true) }

// Comm-matrix overhead: the engines' hot loops carry a per-message
// `prow != nil` branch for the src→dst matrix. With capture off (the
// default) the matrix is never allocated and the variant must stay within
// noise (<5%) of the plain benchmark; the CommOn variant is the live
// capture cost, for reference rather than as a gate. Compare with:
//
//	go test -bench 'PageRankCommOff|PageRankCommOn' -count 10 .
func benchPageRankComm(b *testing.B, capture bool) {
	b.Helper()
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	a, err := Partition(g, "Chunk-V", 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	e.Cluster().SetCommMatrix(capture)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PageRank(10, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankCommOff(b *testing.B) { benchPageRankComm(b, false) }
func BenchmarkPageRankCommOn(b *testing.B)  { benchPageRankComm(b, true) }

func BenchmarkCommMatrix(b *testing.B) { benchExperiment(b, "Comm Matrix") }

// And the live recovery cost (crash mid-run, rollback, replay), for
// reference rather than as a gate.
func BenchmarkPageRankRecovered(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	a, err := Partition(g, "Chunk-V", 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewIterationEngine(g, a, DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	spec := &FaultSpec{
		CheckpointEvery: 2,
		Events:          []FaultEvent{{Kind: CrashFault, Step: 5, Machine: 1}},
	}
	if _, err := EnableFaults(e, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PageRank(10, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

// And the fully-instrumented cost (memory tracer + live registry), for
// reference rather than as a gate.
func BenchmarkPartitionTracedMemory(b *testing.B) {
	g, err := Preset(TwitterSim, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	tr := NewMemoryTrace()
	Instrument(p, tr, NewMetrics())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
		tr.Reset()
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the acceptance gate: the suite must run over the
// whole module without crashing and without diagnostics. With the
// flow-sensitive spanend there are no production waivers left to carry
// (grep for bpartlint:ignore outside internal/analysis: none), so this is
// an exact zero across all eight analyzers. It type-checks every package
// (including the standard library, from source), so it is the slowest test
// in the repo; -short skips it.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow")
	}
	var out, errOut bytes.Buffer
	code := Main([]string{"../../..."}, false, &out, &errOut)
	if code != 0 {
		t.Fatalf("bpartlint exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestExpandSkipsFixtures guards the walker: testdata trees hold seeded
// violations and must never leak into a ./... run.
func TestExpandSkipsFixtures(t *testing.T) {
	dirs, err := expand([]string{"../../internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no directories found")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("expand leaked fixture dir %s", d)
		}
	}
}

// TestJSONOutputGolden pins the -json wire format byte for byte against a
// seeded fixture: one object per line, fields file/line/col/analyzer/
// message in that order, paths relative to the working directory. CI
// uploads this stream as the findings artifact; changing the shape is a
// breaking change for whatever diffs it.
func TestJSONOutputGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := Main([]string{"../../internal/analysis/testdata/noclock/core"}, true, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	const file = "../../internal/analysis/testdata/noclock/core/a.go"
	const tail = `: use simulated time or telemetry.NewStopwatch (or waive with bpartlint:ignore noclock)"}` + "\n"
	want := `{"file":"` + file + `","line":9,"col":11,"analyzer":"noclock","message":"wall-clock read time.Now in a deterministic package` + tail +
		`{"file":"` + file + `","line":11,"col":9,"analyzer":"noclock","message":"wall-clock read time.Since in a deterministic package` + tail +
		`{"file":"` + file + `","line":16,"col":9,"analyzer":"noclock","message":"wall-clock read time.After in a deterministic package` + tail +
		`{"file":"` + file + `","line":21,"col":2,"analyzer":"noclock","message":"wall-clock read time.Sleep in a deterministic package` + tail
	if got := out.String(); got != want {
		t.Errorf("-json output mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestListInventoryGolden pins the -list output the Makefile lint target
// prints: all eight analyzers, alphabetical, one line each.
func TestListInventoryGolden(t *testing.T) {
	var out bytes.Buffer
	listAnalyzers(&out)
	want := []string{
		"aliasret     forbid retaining or returning caller-supplied slices/maps without copy",
		"errio        forbid discarded writer/flush errors in I/O packages",
		"floateq      forbid ==/!= on float operands outside the epsilon helpers",
		"maporder     forbid map iteration whose order escapes into output",
		"metricname   require snake_case constant metric names, consistent per kind",
		"noclock      forbid wall-clock reads in the deterministic packages",
		"norawrand    forbid math/rand imports outside internal/xrand",
		"spanend      require every started telemetry span to be ended on all paths",
	}
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("inventory has %d lines, want %d:\n%s", len(got), len(want), out.String())
	}
	for i := range want {
		if strings.TrimRight(got[i], " ") != strings.TrimRight(want[i], " ") {
			t.Errorf("inventory line %d:\ngot  %q\nwant %q", i, got[i], want[i])
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the acceptance gate: the suite must run over the
// whole module without crashing and without diagnostics. It type-checks
// every package (including the standard library, from source), so it is
// the slowest test in the repo; -short skips it.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow")
	}
	var out, errOut bytes.Buffer
	code := Main([]string{"../../..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("bpartlint exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestExpandSkipsFixtures guards the walker: testdata trees hold seeded
// violations and must never leak into a ./... run.
func TestExpandSkipsFixtures(t *testing.T) {
	dirs, err := expand([]string{"../../internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no directories found")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("expand leaked fixture dir %s", d)
		}
	}
}

// Command bpartlint runs the repo's static-analysis suite
// (internal/analysis): norawrand, spanend, metricname, floateq, errio.
//
// Usage:
//
//	bpartlint [-list] [pattern ...]
//
// Patterns are package directories or "dir/..." trees; the default "./..."
// lints the whole module. Diagnostics print as file:line:col: [analyzer]
// message, one per line; the exit status is 1 when anything fires, 2 when
// a package fails to load or type-check.
//
// The x/tools multichecker would normally provide `go vet -vettool`
// integration; that path is gated until the dependency is available
// offline (see internal/analysis), so CI and the Makefile invoke this
// binary directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bpart/internal/analysis"
	"bpart/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bpartlint [-list] [pattern ...]\n\npatterns: package dirs or dir/... trees (default ./...)\n\nanalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	os.Exit(Main(flag.Args(), os.Stdout, os.Stderr))
}

// Main lints the given patterns, printing diagnostics to out and load
// failures to errOut, and returns the process exit code. It is the whole
// CLI minus flag parsing, so the smoke test can run it in-process.
func Main(patterns []string, out, errOut io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}

	code := 0
	var pkgs []*analysis.LoadedPackage
	for _, dir := range dirs {
		loaded, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(errOut, "bpartlint: %s: %v\n", dir, err)
			code = 2
			continue
		}
		for _, pkg := range loaded {
			for _, cerr := range pkg.CheckErrs {
				fmt.Fprintf(errOut, "bpartlint: %s: type error: %v\n", pkg.Path, cerr)
				code = 2
			}
		}
		pkgs = append(pkgs, loaded...)
	}
	findings, err := analysis.Run(suite.Analyzers(), loader.Fset(), pkgs)
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(out, "%s: [%s] %s\n", relPos(f), f.Analyzer, f.Message)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// relPos renders the finding position relative to the working directory
// when possible.
func relPos(f analysis.Finding) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, rerr := filepath.Rel(wd, f.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			return fmt.Sprintf("%s:%d:%d", rel, f.Pos.Line, f.Pos.Column)
		}
	}
	return fmt.Sprintf("%s:%d:%d", f.Pos.Filename, f.Pos.Line, f.Pos.Column)
}

// expand resolves patterns to package directories. "dir/..." walks the
// tree; anything else names one directory. testdata, vendor and dot-dirs
// are pruned — fixtures under internal/analysis/testdata contain seeded
// violations on purpose.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, walk := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !walk {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return fs.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

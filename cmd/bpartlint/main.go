// Command bpartlint runs the repo's static-analysis suite
// (internal/analysis): aliasret, errio, floateq, maporder, metricname,
// noclock, norawrand, spanend.
//
// Usage:
//
//	bpartlint [-list] [-json] [pattern ...]
//
// Patterns are package directories or "dir/..." trees; the default "./..."
// lints the whole module. Diagnostics print as file:line:col: [analyzer]
// message, one per line; -json emits one JSON object per finding instead
// (fields file, line, col, analyzer, message in that order), the shape the
// CI artifact stores. The exit status is 1 when anything fires, 2 when a
// package fails to load or type-check.
//
// The x/tools multichecker would normally provide `go vet -vettool`
// integration; that path is gated until the dependency is available
// offline (see internal/analysis), so CI and the Makefile invoke this
// binary directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bpart/internal/analysis"
	"bpart/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bpartlint [-list] [-json] [pattern ...]\n\npatterns: package dirs or dir/... trees (default ./...)\n\nanalyzers:\n")
		listAnalyzers(flag.CommandLine.Output())
	}
	flag.Parse()
	if *list {
		listAnalyzers(os.Stdout)
		return
	}
	os.Exit(Main(flag.Args(), *jsonOut, os.Stdout, os.Stderr))
}

// listAnalyzers prints the suite inventory, one analyzer per line with the
// first line of its doc.
func listAnalyzers(w io.Writer) {
	for _, a := range suite.Analyzers() {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
	}
}

// jsonFinding is the wire shape of one -json line. Field order in the
// struct is the field order on the wire; keep it stable — the CI findings
// artifact and any downstream diffing depend on it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main lints the given patterns, printing diagnostics to out and load
// failures to errOut, and returns the process exit code. It is the whole
// CLI minus flag parsing, so the smoke test can run it in-process.
func Main(patterns []string, jsonOut bool, out, errOut io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}

	code := 0
	var pkgs []*analysis.LoadedPackage
	for _, dir := range dirs {
		loaded, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(errOut, "bpartlint: %s: %v\n", dir, err)
			code = 2
			continue
		}
		for _, pkg := range loaded {
			for _, cerr := range pkg.CheckErrs {
				fmt.Fprintf(errOut, "bpartlint: %s: type error: %v\n", pkg.Path, cerr)
				code = 2
			}
		}
		pkgs = append(pkgs, loaded...)
	}
	findings, err := analysis.Run(suite.Analyzers(), loader.Fset(), pkgs)
	if err != nil {
		fmt.Fprintln(errOut, "bpartlint:", err)
		return 2
	}
	enc := json.NewEncoder(out)
	for _, f := range findings {
		if jsonOut {
			if err := enc.Encode(jsonFinding{
				File:     relFile(f),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				fmt.Fprintln(errOut, "bpartlint:", err)
				return 2
			}
		} else {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", relFile(f), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		if code == 0 {
			code = 1
		}
	}
	return code
}

// relFile renders the finding's file relative to the working directory
// when possible.
func relFile(f analysis.Finding) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, rerr := filepath.Rel(wd, f.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return f.Pos.Filename
}

// expand resolves patterns to package directories. "dir/..." walks the
// tree; anything else names one directory. testdata, vendor and dot-dirs
// are pruned — fixtures under internal/analysis/testdata contain seeded
// violations on purpose.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, walk := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !walk {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return fs.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bpart"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	adj := make([][]bpart.VertexID, 20)
	for i := range adj {
		adj[i] = []bpart.VertexID{bpart.VertexID((i + 1) % 20), bpart.VertexID((i + 19) % 20)}
	}
	g := bpart.FromAdjacency(adj)
	path := filepath.Join(t.TempDir(), "ring.bg")
	if err := bpart.WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildRejectsBadFlagCombos(t *testing.T) {
	gp := writeTestGraph(t)
	for name, c := range map[string]struct {
		graph, dataset, assign, scheme string
	}{
		"no graph":          {},
		"both graphs":       {graph: gp, dataset: "twitter-sim"},
		"no assignment":     {graph: gp},
		"both assignments":  {graph: gp, assign: "x", scheme: "Hash"},
		"missing assign":    {graph: gp, assign: "/nonexistent/parts.txt"},
		"unknown scheme":    {graph: gp, scheme: "Teleport"},
		"missing graphfile": {graph: "/nonexistent/g.el", scheme: "Hash"},
	} {
		if _, err := build(c.graph, c.dataset, 1.0, c.assign, c.scheme, 4, ""); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildServesAndRecords(t *testing.T) {
	gp := writeTestGraph(t)
	reqlog := filepath.Join(t.TempDir(), "reqs.jsonl")
	d, err := build(gp, "", 1.0, "", "Hash", 4, reqlog)
	if err != nil {
		t.Fatal(err)
	}

	// Readiness flips only after load: build leaves it to run/the caller.
	rec := httptest.NewRecorder()
	d.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz before ready = %d", rec.Code)
	}
	d.health.SetReady(true)
	rec = httptest.NewRecorder()
	d.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after ready = %d", rec.Code)
	}

	for _, path := range []string{"/v1/lookup?v=3", "/v1/khop?v=0&hops=2", "/v1/walk?v=1&steps=5&seed=7", "/v1/statz", "/healthz", "/metrics"} {
		rec := httptest.NewRecorder()
		d.mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s = %d: %s", path, rec.Code, rec.Body.String())
		}
	}

	// The in-process repartitioner backs scheme swaps.
	rec = httptest.NewRecorder()
	d.mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/swapz?scheme=Chunk-V&k=2", nil))
	if rec.Code != 200 {
		t.Fatalf("swap = %d: %s", rec.Code, rec.Body.String())
	}
	var sr struct {
		Version int `json:"version"`
		K       int `json:"k"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Version != 2 || sr.K != 2 {
		t.Fatalf("swap = %+v", sr)
	}

	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reqlog)
	if err != nil {
		t.Fatal(err)
	}
	// 3 serving requests recorded (statz/healthz/metrics are not serving
	// endpoints; the swap is control-plane).
	if got := bytes.Count(data, []byte("\n")); got != 3 {
		t.Fatalf("request log has %d records:\n%s", got, data)
	}
}

func TestBuildFromAssignmentFileAndDataset(t *testing.T) {
	d, err := build("", "lj-sim", 0.01, "", "Chunk-V", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.srv.R != nil {
		t.Fatal("recorder enabled without -reqlog")
	}
	view := d.srv.B.View()
	ap := filepath.Join(t.TempDir(), "parts.txt")
	if err := bpart.WriteAssignmentFile(ap, &bpart.Assignment{Parts: view.Parts(), K: view.K()}); err != nil {
		t.Fatal(err)
	}
	d2, err := build("", "lj-sim", 0.01, ap, "", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if d2.srv.B.View().K() != view.K() {
		t.Fatalf("assignment round-trip changed k: %d vs %d", d2.srv.B.View().K(), view.K())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
	if code := run([]string{}, &out, &errb); code != 1 {
		t.Fatalf("missing graph exit = %d", code)
	}
	if !strings.Contains(errb.String(), "need -graph") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

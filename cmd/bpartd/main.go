// Command bpartd is the long-running serving daemon: it loads a graph and
// an assignment, then answers placement lookups, k-hop neighborhood
// queries and seeded random-walk/PPR requests over HTTP — the serving
// workload whose tail latency the paper's two-dimensional balance argument
// is ultimately about.
//
// Usage:
//
//	bpartd -graph twitter.el -assign parts.txt -addr :8090
//	bpartd -dataset twitter-sim -scale 0.1 -scheme BPart -k 8 -reqlog reqs.jsonl
//
// The graph comes from a file (-graph) or a named synthetic dataset
// (-dataset at -scale); the assignment from a file (-assign, the cmd/bpart
// -out format) or a scheme partitioned at boot (-scheme -k). Endpoints:
//
//	GET  /v1/lookup?v=ID                       placement lookup
//	GET  /v1/khop?v=ID&hops=H&limit=L          k-hop neighborhood
//	GET  /v1/walk?v=ID&steps=S&alpha=A&seed=X  seeded walk / PPR
//	POST /v1/swapz[?scheme=S&k=N]              assignment hot-swap
//	GET  /v1/statz                             windowed latency snapshot
//	GET  /healthz, /readyz                     probes (ready after load)
//
// plus /metrics, /debug/pprof/* and /debug/vars from the shared debug mux.
// Hot-swap either uploads an assignment body (cmd/bpart -out format) or
// names a scheme to repartition in-process; the flip is atomic and
// in-flight requests finish on the version they started with.
//
// Observability: -reqlog out.jsonl streams one versioned JSONL record per
// request (feed it to `tracestat serve`); /v1/statz serves windowed
// p50/p95/p99/p999 per endpoint. With no -reqlog the per-request stats
// recorder is off and the serving hot path allocates no stats records.
// On SIGINT/SIGTERM the daemon drains, flushes the request log and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bpart"
	"bpart/internal/servestats"
	"bpart/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// daemon is everything run assembles before serving: testable without a
// socket.
type daemon struct {
	srv    *servestats.Server
	mux    *http.ServeMux
	health *telemetry.Health
	reg    *telemetry.Registry
	logf   *os.File // request log file, flushed+closed on shutdown
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpartd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath  = fs.String("graph", "", "graph file (edge list, or .bg binary)")
		datasetID  = fs.String("dataset", "", "synthetic dataset: lj-sim, twitter-sim, friendster-sim")
		scale      = fs.Float64("scale", 1.0, "synthetic dataset scale")
		assignPath = fs.String("assign", "", "assignment file (cmd/bpart -out format)")
		scheme     = fs.String("scheme", "", "partition at boot with this scheme (alternative to -assign)")
		k          = fs.Int("k", 8, "parts for -scheme")
		addr       = fs.String("addr", "127.0.0.1:8090", "listen address")
		reqlog     = fs.String("reqlog", "", "write one JSONL record per request to this file (enables serving stats)")
		outPath    = fs.String("out", "", "dump the active assignment to this file after load (for log reconciliation)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	d, err := build(*graphPath, *datasetID, *scale, *assignPath, *scheme, *k, *reqlog)
	if err != nil {
		fmt.Fprintf(stderr, "bpartd: %v\n", err)
		return 1
	}
	if *outPath != "" {
		view := d.srv.B.View()
		if err := bpart.WriteAssignmentFile(*outPath, &bpart.Assignment{Parts: view.Parts(), K: view.K()}); err != nil {
			fmt.Fprintf(stderr, "bpartd: %v\n", err)
			return 1
		}
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "bpartd: %v\n", err)
		return 1
	}
	g := d.srv.B.Graph()
	fmt.Fprintf(stdout, "bpartd: serving %d vertices / %d edges, k=%d, on http://%s\n",
		g.NumVertices(), g.NumEdges(), d.srv.B.View().K(), lis.Addr())
	d.health.SetReady(true)

	httpSrv := &http.Server{Handler: d.mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(lis) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "bpartd: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(stderr, "bpartd: serve: %v\n", err)
		return 1
	}
	d.health.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "bpartd: shutdown: %v\n", err)
	}
	if err := d.close(); err != nil {
		fmt.Fprintf(stderr, "bpartd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "bpartd: bye")
	return 0
}

// build loads the graph and assignment and assembles the serving mux; it
// is the boot path minus the socket, which is what the tests drive.
func build(graphPath, datasetID string, scale float64, assignPath, scheme string, k int, reqlog string) (*daemon, error) {
	var g *bpart.Graph
	var err error
	switch {
	case graphPath != "" && datasetID != "":
		return nil, fmt.Errorf("-graph and -dataset are mutually exclusive")
	case graphPath != "":
		g, err = bpart.ReadGraphFile(graphPath)
	case datasetID != "":
		g, err = bpart.Preset(bpart.Dataset(datasetID), scale)
	default:
		return nil, fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		return nil, err
	}

	var parts []int
	switch {
	case assignPath != "" && scheme != "":
		return nil, fmt.Errorf("-assign and -scheme are mutually exclusive")
	case assignPath != "":
		var a *bpart.Assignment
		if a, err = bpart.ReadAssignmentFile(assignPath); err != nil {
			return nil, err
		}
		parts, k = a.Parts, a.K
	case scheme != "":
		var a *bpart.Assignment
		if a, err = bpart.Partition(g, scheme, k); err != nil {
			return nil, err
		}
		parts = a.Parts
	default:
		return nil, fmt.Errorf("need -assign or -scheme")
	}

	b, err := servestats.NewBackend(g, parts, k)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		reg:    telemetry.NewRegistry(),
		health: telemetry.NewHealth(),
	}
	var rec *servestats.Recorder
	if reqlog != "" {
		d.logf, err = os.Create(reqlog)
		if err != nil {
			return nil, err
		}
		rec = servestats.NewRecorder(k, d.logf, d.reg)
	}
	d.srv = &servestats.Server{
		B: b,
		R: rec,
		Repartition: func(scheme string, k int) ([]int, error) {
			a, err := bpart.Partition(g, scheme, k)
			if err != nil {
				return nil, err
			}
			return a.Parts, nil
		},
	}
	d.mux = telemetry.DebugMux(d.reg, d.health)
	d.srv.Register(d.mux)
	return d, nil
}

// close flushes and closes the request log, surfacing sticky write errors —
// a full disk must not silently truncate the log.
func (d *daemon) close() error {
	var errs []error
	if d.srv.R != nil {
		errs = append(errs, d.srv.R.Close())
	}
	if d.logf != nil {
		errs = append(errs, d.logf.Close())
	}
	return errors.Join(errs...)
}

// Command bench regenerates the paper's tables and figures (see
// EXPERIMENTS.md). By default it runs every experiment at full scale;
// individual experiments can be selected by ID.
//
// Usage:
//
//	bench                  # everything at scale 1.0 (EXPERIMENTS.md)
//	bench -scale 0.2       # quicker, smaller datasets
//	bench -id "Fig 13" -id "Table 3"
//	bench -list
//	bench -trace run.jsonl -pprof localhost:6060
//	bench -json BENCH_bpart.json -deterministic
//	bench -fault crash5.json -checkpoint-every 2
//
// With -trace, one "bench.experiment" span per experiment (id, duration,
// row count) is appended as JSON lines, along with the engines' spans and
// per-superstep cluster records — feed the file to cmd/tracestat. With
// -json, a machine-readable BENCH artifact (schema in EXPERIMENTS.md) is
// written for regression tracking — including a serving section that
// replays the canonical seeded Zipf request stream per scheme through the
// bpartd HTTP surface (internal/servestats); -deterministic zeroes its
// wall-clock fields (experiment seconds, resource walls, serving latency
// percentiles) so two runs with identical flags produce byte-identical
// files.
// With -fault, the JSON fault schedule is injected into every engine the
// experiments build and the artifact grows a recovery section;
// -checkpoint-every overrides (or, without -fault, enables) superstep
// checkpointing. With -pprof, /debug/pprof/*, /metrics and /debug/vars
// are served on the given address while the benchmark runs — profile the
// harness live. With -resources, one JSONL resource record per phase
// (experiments, partition streams, BPart layers, cluster supersteps,
// scaling-probe replays) is written for cmd/tracestat's `resources`
// subcommand, and the -json artifact grows a resources section with the
// measured speedup curve; -widths overrides the scaling ladder.
// With -workers N, every iteration engine runs its supersteps on an
// N-worker goroutine pool; outputs and every deterministic artifact are
// bit-identical at any setting, so the flag changes wall time only. The
// "Parallel Speedup" experiment and the artifact's parallel section sweep
// their own -widths ladder regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bpart"
)

type idList []string

func (l *idList) String() string     { return fmt.Sprint(*l) }
func (l *idList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ids idList
	scale := fs.Float64("scale", 1.0, "dataset scale (1.0 = EXPERIMENTS.md size)")
	walkers := fs.Int("walkers", 0, "override walkers per vertex (0 = paper defaults)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	csvDir := fs.String("csv", "", "also write each experiment as CSV into this directory")
	tracePath := fs.String("trace", "", "write a JSONL trace (one span per experiment) to this file")
	jsonPath := fs.String("json", "", "write a machine-readable BENCH artifact (schema in EXPERIMENTS.md) to this file, e.g. BENCH_bpart.json")
	auditPath := fs.String("audit", "", "also run one audited BPart partition (twitter-sim at -scale, k=8) and write its decision audit log (JSONL, see cmd/partstat) here")
	faultPath := fs.String("fault", "", "inject this JSON fault schedule (see FaultSpec) into every engine the experiments build")
	ckptEvery := fs.Int("checkpoint-every", 0, "override the schedule's checkpoint interval; without -fault, >0 enables checkpointing with no faults (0 = schedule default, negative disables)")
	deterministic := fs.Bool("deterministic", false, "zero the artifact's wall-clock fields so identical flags yield byte-identical output")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof, /metrics and /debug/vars on this address")
	resPath := fs.String("resources", "", "write runtime resource records (JSONL, see cmd/tracestat resources) to this file and add a resources section to the -json artifact")
	widthsFlag := fs.String("widths", "", "comma-separated scaling-probe worker ladder (default with -resources: powers of two up to NumCPU; otherwise 1,2,4)")
	workers := fs.Int("workers", 0, "superstep worker-pool size for every iteration engine (0 or 1 = sequential supersteps; outputs are bit-identical at any setting)")
	fs.Var(&ids, "id", "experiment ID to run (repeatable; default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range bpart.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	var faults *bpart.FaultSpec
	if *faultPath != "" {
		s, err := bpart.ReadFaultSpecFile(*faultPath)
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		faults = s
	} else if *ckptEvery != 0 {
		// Checkpointing without faults: measure pure checkpoint overhead.
		faults = &bpart.FaultSpec{}
	}
	if faults != nil && *ckptEvery != 0 {
		faults.CheckpointEvery = *ckptEvery
	}

	tracer := bpart.NopTrace()
	reg := bpart.NewMetrics()
	var traceClose func()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		jl := bpart.NewJSONLTrace(f)
		tracer = jl
		traceClose = func() {
			if err := jl.Close(); err != nil {
				fmt.Fprintln(stderr, "bench: trace flush:", err)
			}
			f.Close()
		}
	}
	// The probe is declared as the concrete nil-safe type: with no
	// -resources flag every hook below is a nil-receiver no-op, and the run
	// stays on the byte-identical disabled path.
	var probe *bpart.ResourceProbe
	var resClose func()
	if *resPath != "" {
		f, err := os.Create(*resPath)
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		probe = bpart.NewResourceProbe(f)
		resClose = func() {
			if err := probe.Close(); err != nil {
				fmt.Fprintln(stderr, "bench: resources flush:", err)
			}
			f.Close()
		}
	}
	widths, err := parseWidths(*widthsFlag, *resPath != "")
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 2
	}
	if *pprofAddr != "" {
		addr := *pprofAddr
		go func() {
			if err := http.ListenAndServe(addr, bpart.DebugMux(reg)); err != nil {
				fmt.Fprintln(stderr, "bench: pprof listener:", err)
			}
		}()
		fmt.Fprintf(stdout, "# diagnostics on http://%s/debug/pprof/\n", addr)
	}
	selected := map[string]bool{}
	for _, id := range ids {
		selected[id] = true
	}
	opt := bpart.ExperimentOptions{Scale: *scale, Walkers: *walkers, Tracer: tracer, Metrics: reg, Faults: faults, Widths: widths, Workers: *workers}
	if probe != nil {
		opt.Probe = probe
	}
	artifact := bpart.NewBenchArtifact(opt)
	fmt.Fprintf(stdout, "# bpart experiment run: scale=%.2f\n\n", *scale)
	failed := 0
	grand := time.Now()
	for _, id := range bpart.Experiments() {
		if len(selected) > 0 && !selected[id] {
			continue
		}
		start := time.Now()
		sp := tracer.Span("bench.experiment",
			bpart.TraceString("id", id),
			bpart.TraceFloat("scale", *scale))
		pe := probe.BeginPhase("bench.experiment", bpart.TraceString("id", id))
		tbl, err := bpart.RunExperiment(id, opt)
		pe.EndPhase()
		if err != nil {
			sp.End(bpart.TraceString("error", err.Error()))
			artifact.RecordExperiment(id, time.Since(start).Seconds(), 0, err)
			fmt.Fprintf(stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		sp.End(bpart.TraceInt("rows", len(tbl.Rows)))
		artifact.RecordExperiment(id, time.Since(start).Seconds(), len(tbl.Rows), nil)
		reg.Counter("bench_experiments_total").Inc()
		fmt.Fprintf(stdout, "%s   [%.1fs]\n\n", tbl, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tbl); err != nil {
				fmt.Fprintf(stderr, "%s: csv: %v\n", id, err)
				failed++
			}
		}
	}
	fmt.Fprintf(stdout, "# total %.1fs\n", time.Since(grand).Seconds())
	if *auditPath != "" {
		if err := runAudited(*auditPath, *scale); err != nil {
			fmt.Fprintln(stderr, "bench: audit:", err)
			failed++
		} else {
			fmt.Fprintf(stdout, "# wrote %s\n", *auditPath)
		}
	}
	if *jsonPath != "" {
		if err := artifact.Collect(opt, reg); err != nil {
			fmt.Fprintln(stderr, "bench: artifact:", err)
			failed++
		} else {
			if *resPath != "" {
				if err := artifact.CollectResources(opt); err != nil {
					fmt.Fprintln(stderr, "bench: resources:", err)
					failed++
				}
			}
			if *deterministic {
				artifact.StripWallClock()
			}
			if err := artifact.WriteFile(*jsonPath); err != nil {
				fmt.Fprintln(stderr, "bench: artifact:", err)
				failed++
			} else {
				fmt.Fprintf(stdout, "# wrote %s\n", *jsonPath)
			}
		}
	}
	if traceClose != nil {
		traceClose()
	}
	if resClose != nil {
		resClose()
		fmt.Fprintf(stdout, "# wrote %s\n", *resPath)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// parseWidths resolves the scaling-probe worker ladder: an explicit
// comma-separated -widths list wins; otherwise -resources runs select the
// host's power-of-two ladder up to NumCPU, and plain runs keep the
// harness's host-independent default (nil).
func parseWidths(s string, hostLadder bool) ([]int, error) {
	if s == "" {
		if !hostLadder {
			return nil, nil
		}
		n := runtime.NumCPU()
		var ws []int
		for w := 1; w < n; w *= 2 {
			ws = append(ws, w)
		}
		return append(ws, n), nil
	}
	var ws []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-widths: %q is not a positive worker count", part)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// runAudited performs one fully audited BPart partition of the paper's
// main dataset and writes the decision audit log — the artifact the CI
// observability job feeds to cmd/partstat.
func runAudited(path string, scale float64) error {
	g, err := bpart.Preset(bpart.TwitterSim, scale)
	if err != nil {
		return err
	}
	p, err := bpart.New(bpart.Config{})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	aud, err := bpart.NewAuditor(f, bpart.AuditConfig{})
	if err != nil {
		f.Close()
		return err
	}
	bpart.Audit(p, aud)
	if _, err := p.Partition(g, 8); err != nil {
		f.Close()
		return err
	}
	if err := aud.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir, id string, tbl *bpart.ExperimentTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(id, " ", "_"), ".", "")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.CSV(f); err != nil {
		return err
	}
	return f.Close()
}

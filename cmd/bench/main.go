// Command bench regenerates the paper's tables and figures (see
// EXPERIMENTS.md). By default it runs every experiment at full scale;
// individual experiments can be selected by ID.
//
// Usage:
//
//	bench                  # everything at scale 1.0 (EXPERIMENTS.md)
//	bench -scale 0.2       # quicker, smaller datasets
//	bench -id "Fig 13" -id "Table 3"
//	bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bpart"
)

type idList []string

func (l *idList) String() string     { return fmt.Sprint(*l) }
func (l *idList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var ids idList
	scale := flag.Float64("scale", 1.0, "dataset scale (1.0 = EXPERIMENTS.md size)")
	walkers := flag.Int("walkers", 0, "override walkers per vertex (0 = paper defaults)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each experiment as CSV into this directory")
	flag.Var(&ids, "id", "experiment ID to run (repeatable; default all)")
	flag.Parse()

	if *list {
		for _, id := range bpart.Experiments() {
			fmt.Println(id)
		}
		return
	}
	selected := map[string]bool{}
	for _, id := range ids {
		selected[id] = true
	}
	opt := bpart.ExperimentOptions{Scale: *scale, Walkers: *walkers}
	fmt.Printf("# bpart experiment run: scale=%.2f\n\n", *scale)
	failed := 0
	grand := time.Now()
	for _, id := range bpart.Experiments() {
		if len(selected) > 0 && !selected[id] {
			continue
		}
		start := time.Now()
		tbl, err := bpart.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Printf("%s   [%.1fs]\n\n", tbl, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "%s: csv: %v\n", id, err)
				failed++
			}
		}
	}
	fmt.Printf("# total %.1fs\n", time.Since(grand).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

func writeCSV(dir, id string, tbl *bpart.ExperimentTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(id, " ", "_"), ".", "")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.CSV(f); err != nil {
		return err
	}
	return f.Close()
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bpart"
)

// Two bench runs with identical seeds and flags must write byte-identical
// artifacts: the BENCH JSON (wall clocks stripped by -deterministic) and
// the decision audit log (which never contains timestamps).
func TestBenchDeterministicArtifacts(t *testing.T) {
	dir := t.TempDir()
	files := func(tag string) (string, string) {
		return filepath.Join(dir, tag+".json"), filepath.Join(dir, tag+".jsonl")
	}
	runOnce := func(tag string) ([]byte, []byte) {
		t.Helper()
		jsonPath, auditPath := files(tag)
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-scale", "0.02", "-id", "Fig 3",
			"-json", jsonPath, "-audit", auditPath, "-deterministic",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("bench exited %d: %s", code, stderr.String())
		}
		j, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(auditPath)
		if err != nil {
			t.Fatal(err)
		}
		return j, a
	}
	j1, a1 := runOnce("one")
	j2, a2 := runOnce("two")
	if !bytes.Equal(j1, j2) {
		t.Fatalf("BENCH artifacts differ across identical runs:\n--- one ---\n%.400s\n--- two ---\n%.400s", j1, j2)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("audit logs differ across identical runs")
	}
	// -deterministic means no live wall clock leaks into the artifact.
	var art struct {
		Experiments []struct {
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(j1, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Experiments) == 0 {
		t.Fatal("artifact recorded no experiments")
	}
	for _, e := range art.Experiments {
		if e.WallSeconds != 0 {
			t.Fatalf("wall clock survived -deterministic: %+v", art.Experiments)
		}
	}
}

// -fault injects the schedule: the artifact grows a recovery section and
// the trace carries fault events.
func TestBenchFaultFlag(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-scale", "0.02", "-id", "Fault Recovery",
		"-fault", "../../internal/fault/testdata/crash5.json",
		"-json", jsonPath, "-trace", tracePath, "-deterministic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Recovery []struct {
			Scheme  string `json:"scheme"`
			Crashes int    `json:"crashes"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Recovery) == 0 {
		t.Fatalf("no recovery section in artifact:\n%.400s", data)
	}
	for _, r := range art.Recovery {
		if r.Crashes != 1 {
			t.Fatalf("recovery row %+v, want 1 crash", r)
		}
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault.crash", "fault.checkpoint", "fault.run"} {
		if !strings.Contains(string(trace), want) {
			t.Fatalf("trace missing %s events", want)
		}
	}
	if !strings.Contains(stdout.String(), "Fault Recovery") {
		t.Fatalf("stdout missing the experiment table:\n%.400s", stdout.String())
	}
}

// -checkpoint-every alone enables checkpointing with an empty schedule —
// pure checkpoint overhead, no crashes.
func TestBenchCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-scale", "0.02", "-id", "Fig 3",
		"-checkpoint-every", "2", "-json", jsonPath, "-deterministic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Recovery []struct {
			Crashes     int `json:"crashes"`
			Checkpoints int `json:"checkpoints"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Recovery) == 0 {
		t.Fatal("no recovery section despite -checkpoint-every")
	}
	for _, r := range art.Recovery {
		if r.Crashes != 0 || r.Checkpoints == 0 {
			t.Fatalf("checkpoint-only row = %+v", r)
		}
	}
}

// A missing or corrupt fault spec is a startup error, not a silent
// fault-free run.
func TestBenchBadFaultSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fault", filepath.Join(t.TempDir(), "nope.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing spec exited %d", code)
	}
	if !strings.Contains(stderr.String(), "bench:") {
		t.Fatalf("no diagnostic on stderr: %q", stderr.String())
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-fault", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("corrupt spec exited %d", code)
	}
}

func TestBenchList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"Fig 13", "Fault Recovery"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("-list missing %q:\n%s", want, stdout.String())
		}
	}
}

// normalizeTrace blanks the two host-dependent fields every trace line
// carries (the wall timestamp and span duration), leaving the deterministic
// content — record names, order, and every simulated attribute — intact.
func normalizeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		delete(rec, "ts")
		delete(rec, "dur_us")
		norm, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(norm)
		out.WriteByte('\n')
	}
	return out.String()
}

// The resource probe is observation-only: a -resources run's deterministic
// artifacts (trace modulo wall clocks, audit, and the BENCH JSON apart
// from its additive resources section) must be identical to a run without
// the flag.
func TestBenchResourcesDisabledPathIdentical(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(tag string, extra ...string) (jsonB, traceB, auditB []byte) {
		t.Helper()
		jsonPath := filepath.Join(dir, tag+".json")
		tracePath := filepath.Join(dir, tag+"_trace.jsonl")
		auditPath := filepath.Join(dir, tag+"_audit.jsonl")
		args := append([]string{
			"-scale", "0.02", "-id", "Fig 3",
			"-json", jsonPath, "-trace", tracePath, "-audit", auditPath, "-deterministic",
		}, extra...)
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("bench exited %d: %s", code, stderr.String())
		}
		for _, p := range []struct {
			path string
			out  *[]byte
		}{{jsonPath, &jsonB}, {tracePath, &traceB}, {auditPath, &auditB}} {
			b, err := os.ReadFile(p.path)
			if err != nil {
				t.Fatal(err)
			}
			*p.out = b
		}
		return
	}
	plainJSON, plainTrace, plainAudit := runOnce("plain")
	resJSON, resTrace, resAudit := runOnce("probed",
		"-resources", filepath.Join(dir, "res.jsonl"), "-widths", "1,2")
	if nt1, nt2 := normalizeTrace(t, plainTrace), normalizeTrace(t, resTrace); nt1 != nt2 {
		t.Fatal("-resources perturbed the trace's deterministic content")
	}
	if !bytes.Equal(plainAudit, resAudit) {
		t.Fatal("-resources perturbed the audit log")
	}
	// The probed JSON differs only by its additive resources section.
	var plain, probed map[string]json.RawMessage
	if err := json.Unmarshal(plainJSON, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resJSON, &probed); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["resources"]; ok {
		t.Fatal("artifact grew a resources section without -resources")
	}
	if _, ok := probed["resources"]; !ok {
		t.Fatal("-resources did not add the resources section")
	}
	delete(probed, "resources")
	if len(plain) != len(probed) {
		t.Fatalf("section sets differ: %d vs %d", len(plain), len(probed))
	}
	for k, v := range plain {
		if !bytes.Equal(v, probed[k]) {
			t.Fatalf("section %q differs under -resources:\n%s\nvs\n%s", k, v, probed[k])
		}
	}
}

// -resources writes a parseable resource log whose scaling spans cover the
// requested ladder, and the artifact's resources section survives
// -deterministic with its verification counts intact.
func TestBenchResourcesFlag(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	resPath := filepath.Join(dir, "res.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-scale", "0.02", "-id", "Fig 3",
		"-json", jsonPath, "-resources", resPath, "-widths", "1,2", "-deterministic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d: %s", code, stderr.String())
	}
	l, err := bpart.ReadResourceLogFile(resPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) == 0 {
		t.Fatal("resource log empty")
	}
	widths := map[int]bool{}
	experiments := 0
	for _, r := range l.Records {
		switch r.Phase {
		case "scaling.replay":
			if w, ok := r.Int("workers"); ok {
				widths[w] = true
			}
		case "bench.experiment":
			experiments++
		}
	}
	if !widths[1] || !widths[2] || len(widths) != 2 {
		t.Fatalf("scaling widths recorded: %v, want {1,2}", widths)
	}
	if experiments == 0 {
		t.Fatal("no bench.experiment records")
	}
	var art struct {
		Resources []struct {
			Scheme   string  `json:"scheme"`
			Workers  int     `json:"workers"`
			WallUS   float64 `json:"wall_us"`
			Verified int     `json:"verified"`
		} `json:"resources"`
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Resources) != 6 { // 3 schemes × 2 widths
		t.Fatalf("resources section has %d rows, want 6", len(art.Resources))
	}
	for _, r := range art.Resources {
		if r.WallUS != 0 {
			t.Fatalf("wall clock survived -deterministic: %+v", r)
		}
		if r.Verified <= 0 {
			t.Fatalf("row %+v lost its verification count", r)
		}
	}
}

func TestBenchBadWidths(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-widths", "1,zero"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -widths exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-widths") {
		t.Fatalf("no diagnostic: %s", stderr.String())
	}
}

// The -workers flag changes scheduling only: a deterministic artifact
// written at any worker-pool size is byte-identical to the sequential
// one, and the artifact's parallel section (its own fixed ladder) proves
// every width matched the 1-worker run.
func TestBenchParallelWorkersByteIdentical(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(workers string) []byte {
		t.Helper()
		jsonPath := filepath.Join(dir, "bench_w"+workers+".json")
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-scale", "0.02", "-id", "Fig 3",
			"-json", jsonPath, "-deterministic", "-workers", workers,
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("bench -workers %s exited %d: %s", workers, code, stderr.String())
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := runOnce("1")
	for _, w := range []string{"2", "4"} {
		if got := runOnce(w); !bytes.Equal(got, ref) {
			t.Fatalf("-workers %s artifact differs from -workers 1:\n--- 1 ---\n%.400s\n--- %s ---\n%.400s", w, ref, w, got)
		}
	}
	var art struct {
		Parallel []struct {
			Graph     string  `json:"graph"`
			Engine    string  `json:"engine"`
			Workers   int     `json:"workers"`
			WallUS    float64 `json:"wall_us"`
			Speedup   float64 `json:"speedup"`
			Identical bool    `json:"identical"`
		} `json:"parallel"`
	}
	if err := json.Unmarshal(ref, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Parallel) != 12 { // 2 schemes × 2 engines × widths {1,2,4}
		t.Fatalf("parallel section has %d rows, want 12", len(art.Parallel))
	}
	for _, p := range art.Parallel {
		if !p.Identical {
			t.Fatalf("row %+v failed its bit-identity check", p)
		}
		if p.WallUS != 0 || p.Speedup != 0 {
			t.Fatalf("wall clock survived -deterministic: %+v", p)
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Two bench runs with identical seeds and flags must write byte-identical
// artifacts: the BENCH JSON (wall clocks stripped by -deterministic) and
// the decision audit log (which never contains timestamps).
func TestBenchDeterministicArtifacts(t *testing.T) {
	dir := t.TempDir()
	files := func(tag string) (string, string) {
		return filepath.Join(dir, tag+".json"), filepath.Join(dir, tag+".jsonl")
	}
	runOnce := func(tag string) ([]byte, []byte) {
		t.Helper()
		jsonPath, auditPath := files(tag)
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-scale", "0.02", "-id", "Fig 3",
			"-json", jsonPath, "-audit", auditPath, "-deterministic",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("bench exited %d: %s", code, stderr.String())
		}
		j, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(auditPath)
		if err != nil {
			t.Fatal(err)
		}
		return j, a
	}
	j1, a1 := runOnce("one")
	j2, a2 := runOnce("two")
	if !bytes.Equal(j1, j2) {
		t.Fatalf("BENCH artifacts differ across identical runs:\n--- one ---\n%.400s\n--- two ---\n%.400s", j1, j2)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("audit logs differ across identical runs")
	}
	// -deterministic means no live wall clock leaks into the artifact.
	var art struct {
		Experiments []struct {
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(j1, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Experiments) == 0 {
		t.Fatal("artifact recorded no experiments")
	}
	for _, e := range art.Experiments {
		if e.WallSeconds != 0 {
			t.Fatalf("wall clock survived -deterministic: %+v", art.Experiments)
		}
	}
}

// -fault injects the schedule: the artifact grows a recovery section and
// the trace carries fault events.
func TestBenchFaultFlag(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-scale", "0.02", "-id", "Fault Recovery",
		"-fault", "../../internal/fault/testdata/crash5.json",
		"-json", jsonPath, "-trace", tracePath, "-deterministic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Recovery []struct {
			Scheme  string `json:"scheme"`
			Crashes int    `json:"crashes"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Recovery) == 0 {
		t.Fatalf("no recovery section in artifact:\n%.400s", data)
	}
	for _, r := range art.Recovery {
		if r.Crashes != 1 {
			t.Fatalf("recovery row %+v, want 1 crash", r)
		}
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault.crash", "fault.checkpoint", "fault.run"} {
		if !strings.Contains(string(trace), want) {
			t.Fatalf("trace missing %s events", want)
		}
	}
	if !strings.Contains(stdout.String(), "Fault Recovery") {
		t.Fatalf("stdout missing the experiment table:\n%.400s", stdout.String())
	}
}

// -checkpoint-every alone enables checkpointing with an empty schedule —
// pure checkpoint overhead, no crashes.
func TestBenchCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-scale", "0.02", "-id", "Fig 3",
		"-checkpoint-every", "2", "-json", jsonPath, "-deterministic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Recovery []struct {
			Crashes     int `json:"crashes"`
			Checkpoints int `json:"checkpoints"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Recovery) == 0 {
		t.Fatal("no recovery section despite -checkpoint-every")
	}
	for _, r := range art.Recovery {
		if r.Crashes != 0 || r.Checkpoints == 0 {
			t.Fatalf("checkpoint-only row = %+v", r)
		}
	}
}

// A missing or corrupt fault spec is a startup error, not a silent
// fault-free run.
func TestBenchBadFaultSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fault", filepath.Join(t.TempDir(), "nope.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing spec exited %d", code)
	}
	if !strings.Contains(stderr.String(), "bench:") {
		t.Fatalf("no diagnostic on stderr: %q", stderr.String())
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-fault", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("corrupt spec exited %d", code)
	}
}

func TestBenchList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"Fig 13", "Fault Recovery"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("-list missing %q:\n%s", want, stdout.String())
		}
	}
}

// Command tracestat analyzes the JSONL traces written by the telemetry
// layer (bench -trace, or any program using telemetry.JSONL).
//
// Usage:
//
//	tracestat report [-html out.html] [-supersteps n] [-tree-spans n] trace.jsonl
//	tracestat stragglers trace.jsonl
//	tracestat critpath trace.jsonl
//	tracestat comm [-html out.html] [-audit audit.jsonl] [-supersteps n] [-matrix n] trace.jsonl
//	tracestat resources [-html out.html] [-phases n] resources.jsonl
//	tracestat serve [-html out.html] [-assign parts.txt] [-version n] [-gate gate.json] reqlog.jsonl
//	tracestat diff [-fail-above pct] baseline.jsonl candidate.jsonl
//
// report prints the full analysis: span aggregates, the reconstructed
// phase tree and, per BSP run, the WaitRatio decomposition, straggler
// attribution and critical-path split; -html additionally writes a
// self-contained timeline page. stragglers and critpath print just their
// section. comm analyzes the src→dst comm matrices of a matrix-capture run
// (Cluster.SetCommMatrix): the summed matrix, in/out skew, hot-pair
// attribution and per-superstep evolution, with -audit adding the
// predicted-vs-observed cut reconciliation and -html a heatmap page.
// resources analyzes the resource records of a probed run (bench
// -resources): phase self-time breakdown, alloc/GC attribution and the
// scaling probe's speedup curves, with -html a chart page. serve analyzes
// a bpartd request log: per-endpoint and per-part latency percentiles and
// the version census; -assign adds the per-part tail attribution
// (reconciled exactly against the assignment, -version selecting which
// swap generation, default 1), -gate checks p99 ceilings from a committed
// gate file (exit 1 on breach), and -html writes the latency/heatmap
// page. diff compares
// two traces and, with -fail-above, exits 1 when any gated simulation
// metric regressed by more than the given percent — the CI regression
// gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bpart/internal/commview"
	"bpart/internal/gio"
	"bpart/internal/partaudit"
	"bpart/internal/resview"
	"bpart/internal/servestats"
	"bpart/internal/traceview"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage:
  tracestat report [-html out.html] [-supersteps n] [-tree-spans n] trace.jsonl
  tracestat stragglers trace.jsonl
  tracestat critpath trace.jsonl
  tracestat comm [-html out.html] [-audit audit.jsonl] [-supersteps n] [-matrix n] trace.jsonl
  tracestat resources [-html out.html] [-phases n] resources.jsonl
  tracestat serve [-html out.html] [-assign parts.txt] [-version n] [-gate gate.json] reqlog.jsonl
  tracestat diff [-fail-above pct] baseline.jsonl candidate.jsonl`)
	return 2
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "stragglers":
		return cmdRuns(args[1:], stdout, stderr, "stragglers")
	case "critpath":
		return cmdRuns(args[1:], stdout, stderr, "critpath")
	case "comm":
		return cmdComm(args[1:], stdout, stderr)
	case "resources":
		return cmdResources(args[1:], stdout, stderr)
	case "serve":
		return cmdServe(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "tracestat: unknown subcommand %q\n", args[0])
		return usage(stderr)
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "tracestat:", err)
	return 1
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlPath := fs.String("html", "", "also write a self-contained HTML timeline to this file")
	maxSteps := fs.Int("supersteps", 0, "max supersteps in the straggler table (0 = default)")
	maxTree := fs.Int("tree-spans", 0, "max spans in the phase tree (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	tr, err := traceview.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	opt := traceview.ReportOptions{MaxSupersteps: *maxSteps, MaxTreeSpans: *maxTree}
	if err := traceview.WriteReport(stdout, tr, opt); err != nil {
		return fail(stderr, err)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := traceview.WriteHTML(f, tr); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlPath)
	}
	return 0
}

// cmdRuns serves the single-section subcommands (stragglers, critpath):
// parse, split into runs, print one section per run.
func cmdRuns(args []string, stdout, stderr io.Writer, section string) int {
	fs := flag.NewFlagSet(section, flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxSteps := fs.Int("supersteps", 0, "max supersteps listed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	tr, err := traceview.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	steps, err := traceview.Supersteps(tr)
	if err != nil {
		return fail(stderr, err)
	}
	if len(steps) == 0 {
		fmt.Fprintln(stdout, "no cluster.superstep records in trace")
		return 0
	}
	opt := traceview.ReportOptions{MaxSupersteps: *maxSteps}
	for i, run := range traceview.GroupRuns(steps) {
		var err error
		switch section {
		case "stragglers":
			err = traceview.WriteStragglers(stdout, i+1, run, opt)
		case "critpath":
			err = traceview.WriteCritPath(stdout, i+1, run)
		}
		if err != nil {
			return fail(stderr, err)
		}
	}
	return 0
}

func cmdComm(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("comm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlPath := fs.String("html", "", "also write a self-contained heatmap page to this file")
	auditPath := fs.String("audit", "", "partaudit log to reconcile observed traffic against the predicted cut")
	maxSteps := fs.Int("supersteps", 0, "max supersteps in the evolution table (0 = default)")
	maxMatrix := fs.Int("matrix", 0, "max machine count for which the full matrix is printed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	log, err := commview.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	opt := commview.ReportOptions{MaxSupersteps: *maxSteps, MaxMatrix: *maxMatrix}
	if *auditPath != "" {
		audit, err := partaudit.ReadLogFile(*auditPath)
		if err != nil {
			return fail(stderr, err)
		}
		opt.Audit = audit
	}
	// The reconciliation invariant is checked on every read: a trace whose
	// matrices disagree with the flat counters is corrupted, and analyzing
	// it would dress broken instrumentation up as a topology finding.
	if err := commview.CheckMessages(log.Steps); err != nil {
		return fail(stderr, err)
	}
	if err := commview.WriteReport(stdout, log, opt); err != nil {
		return fail(stderr, err)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := commview.WriteHTML(f, log, "bpart comm topology"); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlPath)
	}
	return 0
}

func cmdResources(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("resources", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlPath := fs.String("html", "", "also write a self-contained chart page to this file")
	maxPhases := fs.Int("phases", 0, "max phases in the breakdown tables (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	log, err := resview.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if err := resview.WriteReport(stdout, log, resview.ReportOptions{MaxPhases: *maxPhases}); err != nil {
		return fail(stderr, err)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := resview.WriteHTML(f, log, "bpart runtime resources"); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlPath)
	}
	return 0
}

func cmdServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlPath := fs.String("html", "", "also write a self-contained latency/heatmap page to this file")
	assignPath := fs.String("assign", "", "assignment file: adds the per-part tail attribution, reconciled exactly")
	version := fs.Int("version", 1, "assignment version to attribute (with -assign)")
	gatePath := fs.String("gate", "", "p99 gate file (baselines/SERVING_gate.json); exit 1 on breach")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	log, err := servestats.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	rep := servestats.Summarize(log)
	var attrib []servestats.Attribution
	if *assignPath != "" {
		parts, k, err := gio.ReadAssignmentFile(*assignPath)
		if err != nil {
			return fail(stderr, err)
		}
		if attrib, err = servestats.Attribute(log, parts, k, *version); err != nil {
			return fail(stderr, err)
		}
	}
	if err := servestats.WriteText(stdout, rep, attrib); err != nil {
		return fail(stderr, err)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := servestats.WriteHTML(f, rep, attrib); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlPath)
	}
	if *gatePath != "" {
		gate, err := servestats.ReadGateFile(*gatePath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := gate.Check(rep); err != nil {
			fmt.Fprintf(stderr, "tracestat: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "serving gate: ok")
	}
	return 0
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	failAbove := fs.Float64("fail-above", 0, "exit 1 when a gated metric regresses by more than this percent (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	a, err := traceview.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	b, err := traceview.ReadFile(fs.Arg(1))
	if err != nil {
		return fail(stderr, err)
	}
	d, err := traceview.Diff(a, b)
	if err != nil {
		return fail(stderr, err)
	}
	if err := d.WriteText(stdout, *failAbove); err != nil {
		return fail(stderr, err)
	}
	if d.Exceeds(*failAbove) {
		fmt.Fprintf(stderr, "tracestat: regression gate tripped (fail-above %.2f%%)\n", *failAbove)
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"walk.run","dur_us":1000}
{"ts":"2026-08-06T10:00:00.0001Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":100,"compute":[50,40],"comm":[20,10],"waiting":[0,10],"steps":[1,1],"edges":[0,0],"vertices":[0,0],"messages":[10,10]}}
`

// slowerTrace regresses sim time by 50% and messages by 100%.
const slowerTrace = `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"walk.run","dur_us":2000}
{"ts":"2026-08-06T10:00:00.0001Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":150,"compute":[80,40],"comm":[20,10],"waiting":[0,10],"steps":[1,1],"edges":[0,0],"vertices":[0,0],"messages":[20,20]}}
`

func writeTrace(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestReportSubcommand(t *testing.T) {
	path := writeTrace(t, "a.jsonl", sampleTrace)
	code, out, errb := runCLI(t, "report", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"TRACE SUMMARY", "walk.run", "RUN 1:", "wait ratio", "straggler attribution", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestReportHTMLFlag(t *testing.T) {
	path := writeTrace(t, "a.jsonl", sampleTrace)
	htmlPath := filepath.Join(t.TempDir(), "out.html")
	code, _, errb := runCLI(t, "report", "-html", htmlPath, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("HTML artifact missing timeline SVG")
	}
}

func TestStragglersSubcommand(t *testing.T) {
	path := writeTrace(t, "a.jsonl", sampleTrace)
	code, out, errb := runCLI(t, "stragglers", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "straggler attribution") || !strings.Contains(out, "M0") {
		t.Fatalf("stragglers output:\n%s", out)
	}
}

func TestCritpathSubcommand(t *testing.T) {
	path := writeTrace(t, "a.jsonl", sampleTrace)
	code, out, errb := runCLI(t, "critpath", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "critical path") {
		t.Fatalf("critpath output:\n%s", out)
	}
}

// The regression gate: identical traces pass, a regressed candidate under a
// tight threshold exits non-zero (the ISSUE's acceptance criterion).
func TestDiffRegressionGate(t *testing.T) {
	a := writeTrace(t, "a.jsonl", sampleTrace)
	b := writeTrace(t, "b.jsonl", slowerTrace)

	code, out, _ := runCLI(t, "diff", a, a)
	if code != 0 {
		t.Fatalf("self-diff exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no gated regressions") {
		t.Fatalf("self-diff output:\n%s", out)
	}

	code, out, errb := runCLI(t, "diff", "-fail-above", "10", a, b)
	if code != 1 {
		t.Fatalf("regressed diff exit %d, want 1; stdout:\n%s", code, out)
	}
	if !strings.Contains(errb, "regression gate tripped") {
		t.Fatalf("stderr missing gate message: %s", errb)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("diff table missing FAIL marker:\n%s", out)
	}

	// Same regression without the gate: report only, exit 0.
	code, _, _ = runCLI(t, "diff", a, b)
	if code != 0 {
		t.Fatalf("ungated diff exit %d, want 0", code)
	}

	// Threshold above the worst regression: exit 0.
	code, _, _ = runCLI(t, "diff", "-fail-above", "500", a, b)
	if code != 0 {
		t.Fatalf("high-threshold diff exit %d, want 0", code)
	}
}

// commTrace carries pairs matrices (matrix capture on) with a recovery
// phase superstep.
const commTrace = `{"ts":"2026-08-06T10:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":100,"compute":[50,40],"comm":[20,10],"waiting":[0,10],"steps":[0,0],"edges":[10,10],"vertices":[2,2],"messages":[3,1],"pairs":[[0,3],[1,0]]}}
{"ts":"2026-08-06T10:00:00.0001Z","type":"event","name":"cluster.superstep","attrs":{"iteration":1,"machines":2,"time_us":100,"compute":[10,0],"comm":[0,0],"waiting":[0,10],"steps":[0,0],"edges":[0,0],"vertices":[0,0],"messages":[5,0],"pairs":[[0,5],[0,0]],"phase":"restream"}}
`

// commAudit is a minimal partaudit log with a final cut ratio to reconcile
// against.
const commAudit = `{"type":"final","k":2,"v":[2,2],"e":[10,10],"v_bias":0,"e_bias":0,"cut_ratio":0.25,"refine_moves":0}
`

func TestCommSubcommand(t *testing.T) {
	path := writeTrace(t, "comm.jsonl", commTrace)
	code, out, errb := runCLI(t, "comm", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"RUN 1: 2 machines, 2 supersteps (1 recovery), 9 cross-machine messages",
		"comm imbalance ratio", "hot pair M0->M1", "src\\dst matrix",
		"per-machine out/in skew", "[restream]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comm output missing %q:\n%s", want, out)
		}
	}
	// Byte-determinism across reruns — the ISSUE's acceptance criterion.
	_, out2, _ := runCLI(t, "comm", path)
	if out != out2 {
		t.Fatal("comm output not byte-identical across reruns")
	}
}

func TestCommAuditReconciliation(t *testing.T) {
	path := writeTrace(t, "comm.jsonl", commTrace)
	auditPath := writeTrace(t, "audit.jsonl", commAudit)
	code, out, errb := runCLI(t, "comm", "-audit", auditPath, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"reconciliation vs partitioner", "observed cut share", "predicted cut ratio 0.2500"} {
		if !strings.Contains(out, want) {
			t.Errorf("comm -audit output missing %q:\n%s", want, out)
		}
	}
}

func TestCommHTMLFlag(t *testing.T) {
	path := writeTrace(t, "comm.jsonl", commTrace)
	htmlPath := filepath.Join(t.TempDir(), "comm.html")
	code, _, errb := runCLI(t, "comm", "-html", htmlPath, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("HTML artifact missing heatmap SVG")
	}
}

func TestCommNoMatrices(t *testing.T) {
	// A valid trace without pairs attrs (capture off): informative, exit 0.
	path := writeTrace(t, "plain.jsonl", sampleTrace)
	code, out, errb := runCLI(t, "comm", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "matrix capture was off") {
		t.Fatalf("comm output:\n%s", out)
	}
}

func TestCommRejectsInconsistentMatrix(t *testing.T) {
	// Row sum 3 disagrees with messages[0]=9: corrupted instrumentation
	// must be a hard error, not a report.
	bad := `{"ts":"2026-08-06T10:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[1,1],"vertices":[1,1],"messages":[9,0],"pairs":[[0,3],[0,0]]}}` + "\n"
	path := writeTrace(t, "bad.jsonl", bad)
	code, _, stderr := runCLI(t, "comm", path)
	if code != 1 || !strings.Contains(stderr, "row sum") {
		t.Fatalf("exit %d, stderr %q; want 1 with row-sum diagnostic", code, stderr)
	}
}

func TestBadInvocations(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "bogus"); code != 2 {
		t.Errorf("unknown subcommand exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "report"); code != 2 {
		t.Errorf("report with no file exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "diff", "one.jsonl"); code != 2 {
		t.Errorf("diff with one file exit = %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "report", "/nonexistent/trace.jsonl"); code != 1 || stderr == "" {
		t.Errorf("missing file exit = %d, want 1 with stderr", code)
	}
}

// A file that is not a trace at all (every line garbage) must be a hard
// failure with a single-line diagnostic — not an empty report with exit 0.
func TestCorruptTraceFails(t *testing.T) {
	path := writeTrace(t, "garbage.jsonl", "this is not a trace\n")
	for _, sub := range []string{"report", "stragglers", "critpath"} {
		code, _, stderr := runCLI(t, sub, path)
		if code != 1 {
			t.Errorf("%s on garbage exit = %d, want 1", sub, code)
		}
		diag := strings.TrimRight(stderr, "\n")
		if diag == "" || strings.Contains(diag, "\n") {
			t.Errorf("%s diagnostic not a single line: %q", sub, stderr)
		}
		if !strings.Contains(diag, "line 1") {
			t.Errorf("%s diagnostic does not locate the damage: %q", sub, diag)
		}
	}
	if code, _, stderr := runCLI(t, "diff", path, path); code != 1 || stderr == "" {
		t.Errorf("diff on garbage exit = %d (stderr %q), want 1 with diagnostic", code, stderr)
	}
}

func TestTruncatedTraceStillReports(t *testing.T) {
	path := writeTrace(t, "torn.jsonl", sampleTrace+`{"ts":"2026-08-06T10:00:01Z","type":"ev`)
	code, out, errb := runCLI(t, "report", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "WARNING: final line torn") {
		t.Fatalf("no truncation warning:\n%s", out)
	}
}

const sampleResources = `{"v":1,"type":"resource","seq":0,"kind":"span","phase":"partition.stream","wall_us":2500,"allocs":100,"alloc_bytes":8192,"heap_bytes":4096,"gc_cycles":1,"gc_pause_us":10,"goroutines":2,"attrs":{"k":8}}
{"v":1,"type":"resource","seq":1,"kind":"span","phase":"scaling.replay","wall_us":1000,"allocs":10,"alloc_bytes":512,"heap_bytes":4096,"gc_cycles":0,"gc_pause_us":0,"goroutines":3,"attrs":{"scheme":"Fennel","workers":1}}
{"v":1,"type":"resource","seq":2,"kind":"span","phase":"scaling.replay","wall_us":600,"allocs":10,"alloc_bytes":512,"heap_bytes":4096,"gc_cycles":0,"gc_pause_us":0,"goroutines":4,"attrs":{"scheme":"Fennel","workers":2}}
`

func TestResourcesSubcommand(t *testing.T) {
	path := writeTrace(t, "res.jsonl", sampleResources)
	code, out, errb := runCLI(t, "resources", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"RESOURCES:", "partition.stream", "allocation / GC attribution", "scaling probe", "Fennel", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("resources output missing %q:\n%s", want, out)
		}
	}
}

func TestResourcesHTMLFlag(t *testing.T) {
	path := writeTrace(t, "res.jsonl", sampleResources)
	htmlPath := filepath.Join(t.TempDir(), "res.html")
	code, out, errb := runCLI(t, "resources", "-html", htmlPath, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, htmlPath) {
		t.Errorf("stdout does not mention the HTML path:\n%s", out)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "Fennel") {
		t.Errorf("HTML page missing chart content")
	}
}

func TestResourcesCorruptFails(t *testing.T) {
	path := writeTrace(t, "garbage.jsonl", "not a resource log\n")
	code, _, stderr := runCLI(t, "resources", path)
	if code != 1 {
		t.Errorf("resources on garbage exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "line 1") {
		t.Errorf("diagnostic does not locate the damage: %q", stderr)
	}
	if code, _, _ := runCLI(t, "resources"); code != 2 {
		t.Errorf("resources without a file exit = %d, want 2", code)
	}
}

const sampleReqlog = `{"v":1,"type":"request","seq":1,"endpoint":"lookup","vertex":0,"part":0,"version":1,"status":200,"latency_us":100}
{"v":1,"type":"request","seq":2,"endpoint":"lookup","vertex":1,"part":0,"version":1,"status":200,"latency_us":120}
{"v":1,"type":"request","seq":3,"endpoint":"walk","vertex":2,"part":1,"version":1,"status":200,"latency_us":900}
{"v":1,"type":"request","seq":4,"endpoint":"khop","vertex":3,"part":1,"version":1,"status":200,"latency_us":400}
`

const sampleAssign = `# bpart assignment k=2 n=4
0
0
1
1
`

func TestServeSubcommand(t *testing.T) {
	path := writeTrace(t, "reqs.jsonl", sampleReqlog)
	code, out, errb := runCLI(t, "serve", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"Serving report: 4 requests", "Per endpoint:", "lookup", "khop", "walk", "Per part:", "Versions:", "v1"} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Tail attribution") {
		t.Error("attribution printed without -assign")
	}
}

func TestServeAttributionAndHTML(t *testing.T) {
	path := writeTrace(t, "reqs.jsonl", sampleReqlog)
	assign := writeTrace(t, "parts.txt", sampleAssign)
	htmlPath := filepath.Join(t.TempDir(), "serve.html")
	code, out, errb := runCLI(t, "serve", "-assign", assign, "-html", htmlPath, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "Tail attribution") || !strings.Contains(out, "pressure") {
		t.Fatalf("attribution missing:\n%s", out)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<svg") {
		t.Fatal("HTML page has no SVG")
	}
}

func TestServeAttributionRejectsMisroutedLog(t *testing.T) {
	// The log routes vertex 0 to part 0; this assignment disagrees.
	path := writeTrace(t, "reqs.jsonl", sampleReqlog)
	assign := writeTrace(t, "parts.txt", "# bpart assignment k=2 n=4\n1\n1\n0\n0\n")
	code, _, errb := runCLI(t, "serve", "-assign", assign, path)
	if code != 1 || !strings.Contains(errb, "assignment says") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestServeGate(t *testing.T) {
	path := writeTrace(t, "reqs.jsonl", sampleReqlog)
	pass := writeTrace(t, "gate.json", `{"v":1,"max_p99_us":{"lookup":100000,"walk":100000}}`)
	code, out, errb := runCLI(t, "serve", "-gate", pass, path)
	if code != 0 || !strings.Contains(out, "serving gate: ok") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	tight := writeTrace(t, "tight.json", `{"v":1,"max_p99_us":{"walk":1}}`)
	code, _, errb = runCLI(t, "serve", "-gate", tight, path)
	if code != 1 || !strings.Contains(errb, "exceeds gate") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestServeBadInputs(t *testing.T) {
	if code, _, _ := runCLI(t, "serve"); code != 2 {
		t.Fatalf("no args exit = %d", code)
	}
	garbage := writeTrace(t, "bad.jsonl", "not a reqlog\n")
	if code, _, _ := runCLI(t, "serve", garbage); code != 1 {
		t.Fatalf("garbage log exit = %d", code)
	}
}

package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"bpart/internal/graph"
	"bpart/internal/servestats"
)

func testBackendServer(t *testing.T, n, k int) *httptest.Server {
	t.Helper()
	adj := make([][]graph.VertexID, n)
	for i := range adj {
		adj[i] = []graph.VertexID{graph.VertexID((i + 1) % n)}
	}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i * k / n
	}
	b, err := servestats.NewBackend(graph.FromAdjacency(adj), parts, k)
	if err != nil {
		t.Fatal(err)
	}
	s := &servestats.Server{B: b}
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopRun(t *testing.T) {
	ts := testBackendServer(t, 50, 4)
	var out, errb strings.Builder
	code := run([]string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-vertices", "50", "-n", "200", "-seed", "7", "-zipf", "1.1", "-c", "4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "200 requests") || !strings.Contains(out.String(), "0 errors") {
		t.Fatalf("summary: %s", out.String())
	}
	for _, ep := range servestats.Endpoints {
		if !strings.Contains(out.String(), ep) {
			t.Fatalf("summary missing %s:\n%s", ep, out.String())
		}
	}
}

func TestOpenLoopRun(t *testing.T) {
	ts := testBackendServer(t, 20, 2)
	var out, errb strings.Builder
	code := run([]string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-vertices", "20", "-n", "50", "-open", "-rate", "5000", "-mix", "1,0,0",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "50 requests") {
		t.Fatalf("summary: %s", out.String())
	}
}

func TestErrorsExitNonzero(t *testing.T) {
	ts := testBackendServer(t, 10, 2)
	var out, errb strings.Builder
	// -vertices larger than the served graph: out-of-range lookups 400.
	code := run([]string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-vertices", "1000", "-n", "50", "-mix", "1,0,0",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "first error") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errb strings.Builder
	for name, args := range map[string][]string{
		"bad flag":     {"-bogus"},
		"no vertices":  {"-n", "5"},
		"bad mix len":  {"-vertices", "10", "-mix", "1,2"},
		"bad mix val":  {"-vertices", "10", "-mix", "a,b,c"},
		"neg mix":      {"-vertices", "10", "-mix", "-1,0,0"},
		"open no rate": {"-vertices", "10", "-open", "-rate", "0"},
	} {
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
}

// Command gengraph writes synthetic scale-free graphs to disk, either from
// the named dataset presets or from explicit generator parameters.
//
// Usage:
//
//	gengraph -dataset twitter-sim -scale 1.0 -o twitter-sim.bg
//	gengraph -n 100000 -degree 30 -skew 0.75 -o custom.el
package main

import (
	"flag"
	"fmt"
	"os"

	"bpart"
)

func main() {
	var (
		datasetID = flag.String("dataset", "", "preset dataset: lj-sim, twitter-sim, friendster-sim")
		scale     = flag.Float64("scale", 1.0, "preset scale")
		n         = flag.Int("n", 0, "custom: number of vertices")
		degree    = flag.Float64("degree", 16, "custom: average out-degree")
		skew      = flag.Float64("skew", 0.75, "custom: rank exponent in (0,1)")
		locality  = flag.Float64("locality", 0.2, "custom: ID-window edge fraction")
		community = flag.Float64("community", 0.4, "custom: community edge fraction")
		seed      = flag.Uint64("seed", 1, "custom: RNG seed")
		out       = flag.String("o", "", "output path (.bg binary, else edge-list text)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o is required"))
	}
	var (
		g   *bpart.Graph
		err error
	)
	switch {
	case *datasetID != "":
		g, err = bpart.Preset(bpart.Dataset(*datasetID), *scale)
	case *n > 0:
		g, err = bpart.Generate(bpart.GenConfig{
			NumVertices:   *n,
			AvgDegree:     *degree,
			Skew:          *skew,
			Locality:      *locality,
			CommunityProb: *community,
			Seed:          *seed,
		})
	default:
		err = fmt.Errorf("need -dataset or -n")
	}
	if err != nil {
		fatal(err)
	}
	if err := bpart.WriteGraphFile(*out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %v to %s (%v)\n", g, *out, bpart.Stats(g))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}

// Command bpart partitions a graph and reports the two-dimensional balance
// and edge-cut quality of the result — the quantities the paper's
// evaluation revolves around.
//
// Usage:
//
//	bpart -scheme BPart -k 8 -graph twitter.el
//	bpart -scheme Fennel -k 16 -dataset twitter-sim -scale 0.5
//	bpart -k 8 -dataset friendster-sim -all
//	bpart -scheme BPart -k 8 -dataset twitter-sim -out parts.txt
//
// The input is either a graph file (-graph; edge-list text or ".bg"
// binary) or a named synthetic dataset (-dataset at -scale). With -all,
// every registered scheme is run and compared on one line each. With
// -out, the vertex→part assignment is written one part id per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bpart"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge list, or .bg binary)")
		datasetID = flag.String("dataset", "", "synthetic dataset: lj-sim, twitter-sim, friendster-sim")
		scale     = flag.Float64("scale", 1.0, "synthetic dataset scale")
		scheme    = flag.String("scheme", "BPart", "partitioning scheme (see -list)")
		k         = flag.Int("k", 8, "number of parts")
		all       = flag.Bool("all", false, "compare every registered scheme")
		vcutMode  = flag.Bool("vcut", false, "compare the vertex-cut schemes instead (replication factor)")
		list      = flag.Bool("list", false, "list registered schemes and exit")
		outPath   = flag.String("out", "", "write the vertex→part assignment to this file")
		evalPath  = flag.String("eval", "", "evaluate an existing assignment file instead of partitioning")
		timeline  = flag.String("timeline", "", "run a 5|V|-walker random walk on the partition and write the per-machine BSP timeline CSV here")
	)
	flag.Parse()
	if *list {
		for _, s := range bpart.Schemes() {
			fmt.Println(s)
		}
		return
	}
	g, err := loadGraph(*graphPath, *datasetID, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v (%v)\n", g, bpart.Stats(g))

	if *evalPath != "" {
		a, err := bpart.ReadAssignmentFile(*evalPath)
		if err != nil {
			fatal(err)
		}
		r, err := bpart.Evaluate(g, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stored assignment %s:\n%s\n", *evalPath, r)
		return
	}

	if *vcutMode {
		fmt.Printf("%-12s %12s %12s\n", "scheme", "repl.factor", "max replicas")
		for _, p := range []bpart.VertexCutPartitioner{
			bpart.NewRandomEdgeCut(), bpart.NewDBH(), bpart.NewGreedyCut(), bpart.NewHDRF(),
		} {
			ea, err := p.Partition(g, *k)
			if err != nil {
				fatal(err)
			}
			r, err := bpart.EvaluateVertexCut(g, ea)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %12.3f %12d\n", p.Name(), r.ReplicationFactor, r.MaxReplicas)
		}
		return
	}

	if *all {
		fmt.Printf("%-12s %10s %10s %10s %10s %10s %10s\n",
			"scheme", "Vbias", "Ebias", "Vjain", "Ejain", "cut", "time(s)")
		for _, s := range bpart.Schemes() {
			r, dt, err := run(g, s, *k)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %10.4f %10.4f %10.4f %10.4f %10.4f %10.3f\n",
				s, r.VertexBias, r.EdgeBias, r.VertexJain, r.EdgeJain, r.CutRatio, dt.Seconds())
		}
		return
	}

	start := time.Now()
	a, err := bpart.Partition(g, *scheme, *k)
	if err != nil {
		fatal(err)
	}
	dt := time.Since(start)
	r, err := bpart.Evaluate(g, a)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s into %d parts in %.3fs\n%s\n", *scheme, *k, dt.Seconds(), r)
	if *outPath != "" {
		if err := bpart.WriteAssignmentFile(*outPath, a); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *outPath)
	}
	if *timeline != "" {
		if err := writeWalkTimeline(*timeline, g, a); err != nil {
			fatal(err)
		}
		fmt.Printf("BSP timeline written to %s\n", *timeline)
	}
}

// writeWalkTimeline runs the paper's 5|V|-walker, 4-step workload on the
// placement and dumps the per-machine, per-iteration timing as CSV.
func writeWalkTimeline(path string, g *bpart.Graph, a *bpart.Assignment) error {
	eng, err := bpart.NewWalkEngine(g, a, bpart.DefaultCostModel())
	if err != nil {
		return err
	}
	res, err := eng.Run(bpart.WalkConfig{Kind: bpart.SimpleWalk, WalkersPerVertex: 5, Steps: 4, Seed: 1})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Stats.WriteTimeline(f); err != nil {
		return err
	}
	return f.Close()
}

func loadGraph(path, datasetID string, scale float64) (*bpart.Graph, error) {
	switch {
	case path != "" && datasetID != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return bpart.ReadGraphFile(path)
	case datasetID != "":
		return bpart.Preset(bpart.Dataset(datasetID), scale)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func run(g *bpart.Graph, scheme string, k int) (bpart.Report, time.Duration, error) {
	start := time.Now()
	a, err := bpart.Partition(g, scheme, k)
	if err != nil {
		return bpart.Report{}, 0, err
	}
	dt := time.Since(start)
	r, err := bpart.Evaluate(g, a)
	return r, dt, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpart:", err)
	os.Exit(1)
}

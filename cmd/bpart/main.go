// Command bpart partitions a graph and reports the two-dimensional balance
// and edge-cut quality of the result — the quantities the paper's
// evaluation revolves around.
//
// Usage:
//
//	bpart -scheme BPart -k 8 -graph twitter.el
//	bpart -scheme Fennel -k 16 -dataset twitter-sim -scale 0.5
//	bpart -k 8 -dataset friendster-sim -all
//	bpart -scheme BPart -k 8 -dataset twitter-sim -out parts.txt
//
// The input is either a graph file (-graph; edge-list text or ".bg"
// binary) or a named synthetic dataset (-dataset at -scale). With -all,
// every registered scheme is run and compared on one line each. With
// -out, the vertex→part assignment is written one part id per line.
//
// Observability: -trace out.jsonl streams structured spans (one per BPart
// combining layer, streaming pass and refine pass, plus one record per BSP
// superstep when -timeline runs) as JSON lines; -audit out.jsonl writes
// the partition decision audit log (sampled score decompositions, the
// streaming quality timeline and the combining audit tree — feed it to
// cmd/partstat); -metrics prints the counter/gauge registry in Prometheus
// text format on exit; -pprof ADDR serves /debug/pprof/*, /metrics and
// /debug/vars on ADDR for the run's duration; -resources out.jsonl writes
// one runtime resource record per phase (partition streams, BPart layers,
// BSP supersteps — feed it to `tracestat resources`). All observability is
// observation-only: the partition and every simulated result are
// byte-identical with or without it.
//
// Fault injection: -fault sched.json loads a JSON fault schedule (see
// FaultSpec; cmd/bench shares the format) and injects it into the engine
// runs — a PageRank recovery demo over the fresh partition, and the
// -timeline walk when requested — then prints each run's RecoveryStats;
// -checkpoint-every overrides (or, without -fault, enables) superstep
// checkpointing. -workers N runs the engine supersteps on an N-worker
// goroutine pool; results are bit-identical to the sequential run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bpart"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge list, or .bg binary)")
		datasetID = flag.String("dataset", "", "synthetic dataset: lj-sim, twitter-sim, friendster-sim")
		scale     = flag.Float64("scale", 1.0, "synthetic dataset scale")
		scheme    = flag.String("scheme", "BPart", "partitioning scheme (see -list)")
		k         = flag.Int("k", 8, "number of parts")
		all       = flag.Bool("all", false, "compare every registered scheme")
		vcutMode  = flag.Bool("vcut", false, "compare the vertex-cut schemes instead (replication factor)")
		list      = flag.Bool("list", false, "list registered schemes and exit")
		outPath   = flag.String("out", "", "write the vertex→part assignment to this file")
		evalPath  = flag.String("eval", "", "evaluate an existing assignment file instead of partitioning")
		timeline  = flag.String("timeline", "", "run a 5|V|-walker random walk on the partition and write the per-machine BSP timeline CSV here")
		faultPath = flag.String("fault", "", "inject this JSON fault schedule (see FaultSpec) into the engine runs and print their RecoveryStats")
		ckptEvery = flag.Int("checkpoint-every", 0, "override the schedule's checkpoint interval; without -fault, >0 enables checkpointing with no faults (0 = schedule default, negative disables)")
		tracePath = flag.String("trace", "", "write a JSONL span/event trace of the run to this file")
		auditPath = flag.String("audit", "", "write the partition decision audit log (JSONL, see cmd/partstat) to this file")
		metrics   = flag.Bool("metrics", false, "print telemetry counters (Prometheus text format) on exit")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof, /metrics and /debug/vars on this address (e.g. localhost:6060)")
		resPath   = flag.String("resources", "", "write runtime resource records (JSONL, see `tracestat resources`) to this file")
		workers   = flag.Int("workers", 0, "superstep worker-pool size for the engine runs (0 or 1 = sequential; results are bit-identical at any setting)")
	)
	flag.Parse()

	tel, err := setupTelemetry(*tracePath, *metrics, *pprofAddr, *resPath)
	if err != nil {
		fatal(err)
	}
	defer tel.finish()
	faults, err := loadFaultSpec(*faultPath, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, s := range bpart.Schemes() {
			fmt.Println(s)
		}
		return
	}
	g, err := loadGraph(*graphPath, *datasetID, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v (%v)\n", g, bpart.Stats(g))

	if *evalPath != "" {
		a, err := bpart.ReadAssignmentFile(*evalPath)
		if err != nil {
			fatal(err)
		}
		r, err := bpart.Evaluate(g, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stored assignment %s:\n%s\n", *evalPath, r)
		return
	}

	if *vcutMode {
		fmt.Printf("%-12s %12s %12s\n", "scheme", "repl.factor", "max replicas")
		for _, p := range []bpart.VertexCutPartitioner{
			bpart.NewRandomEdgeCut(), bpart.NewDBH(), bpart.NewGreedyCut(), bpart.NewHDRF(),
		} {
			tel.instrument(p)
			ea, err := p.Partition(g, *k)
			if err != nil {
				fatal(err)
			}
			r, err := bpart.EvaluateVertexCut(g, ea)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %12.3f %12d\n", p.Name(), r.ReplicationFactor, r.MaxReplicas)
		}
		return
	}

	if *all {
		fmt.Printf("%-12s %10s %10s %10s %10s %10s %10s\n",
			"scheme", "Vbias", "Ebias", "Vjain", "Ejain", "cut", "time(s)")
		for _, s := range bpart.Schemes() {
			r, dt, err := run(g, s, *k, tel)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %10.4f %10.4f %10.4f %10.4f %10.4f %10.3f\n",
				s, r.VertexBias, r.EdgeBias, r.VertexJain, r.EdgeJain, r.CutRatio, dt.Seconds())
		}
		return
	}

	p, err := bpart.NewScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	tel.instrument(p)
	if *auditPath != "" {
		f, err := os.Create(*auditPath)
		if err != nil {
			fatal(err)
		}
		aud, err := bpart.NewAuditor(f, bpart.AuditConfig{})
		if err != nil {
			fatal(err)
		}
		if !bpart.Audit(p, aud) {
			fatal(fmt.Errorf("scheme %s does not support decision auditing (BPart, Fennel and LDG do)", *scheme))
		}
		defer func() {
			if err := aud.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bpart: audit flush:", err)
			}
			f.Close()
			fmt.Printf("audit log written to %s\n", *auditPath)
		}()
	}
	start := time.Now()
	a, err := p.Partition(g, *k)
	if err != nil {
		fatal(err)
	}
	dt := time.Since(start)
	r, err := bpart.Evaluate(g, a)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s into %d parts in %.3fs\n%s\n", *scheme, *k, dt.Seconds(), r)
	if *outPath != "" {
		if err := bpart.WriteAssignmentFile(*outPath, a); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *outPath)
	}
	if faults != nil {
		if err := runFaulted(g, a, faults, *k, *workers, tel); err != nil {
			fatal(err)
		}
	}
	if *timeline != "" {
		if err := writeWalkTimeline(*timeline, g, a, faults, *k, tel); err != nil {
			fatal(err)
		}
		fmt.Printf("BSP timeline written to %s\n", *timeline)
	}
}

// loadFaultSpec resolves the -fault / -checkpoint-every pair the same way
// cmd/bench does: a schedule file, optionally with its checkpoint interval
// overridden, or — with -checkpoint-every alone — an empty schedule that
// measures pure checkpoint overhead.
func loadFaultSpec(path string, every int) (*bpart.FaultSpec, error) {
	var spec *bpart.FaultSpec
	if path != "" {
		s, err := bpart.ReadFaultSpecFile(path)
		if err != nil {
			return nil, err
		}
		spec = s
	} else if every != 0 {
		spec = &bpart.FaultSpec{}
	}
	if spec != nil && every != 0 {
		spec.CheckpointEvery = every
	}
	return spec, nil
}

// runFaulted replays the schedule against a PageRank run on the fresh
// partition and prints the recovery ledger — the CLI view of the
// RecoveryStats the BENCH artifact records. Recovery is exact, so the
// ranks themselves need no caveat.
func runFaulted(g *bpart.Graph, a *bpart.Assignment, spec *bpart.FaultSpec, k, workers int, tel *telemetryState) error {
	e, err := bpart.NewIterationEngine(g, a, bpart.DefaultCostModel())
	if err != nil {
		return err
	}
	e.Cluster().SetWorkers(workers)
	tel.instrument(e)
	proj := spec.ForMachines(k)
	ctl, err := bpart.EnableFaults(e, proj)
	if err != nil {
		return err
	}
	tel.instrument(ctl)
	res, err := e.PageRank(10, 0.85)
	if err != nil {
		return err
	}
	printRecovery("pagerank", proj.Policy, res.Recovery)
	return nil
}

// printRecovery renders one engine run's RecoveryStats on a single line.
func printRecovery(label string, policy bpart.FaultPolicy, rs *bpart.RecoveryStats) {
	if rs == nil {
		return
	}
	fmt.Printf("%s recovery [%s]: crashes=%d checkpoints=%d (%d vertices) replayed=%d restreamed=%d lost_batches=%d slow=%d sim_time=%.0fus added_wait=%.2f%%\n",
		label, policy, rs.Crashes, rs.Checkpoints, rs.CheckpointVertices,
		rs.SuperstepsReplayed, rs.RestreamedVertices, rs.LostBatches, rs.SlowSupersteps,
		rs.RecoverySimTimeUS, 100*rs.AddedWaitRatio)
}

// telemetryState bundles the optional tracer, metrics registry and
// diagnostics listener for the run.
type telemetryState struct {
	tracer    bpart.Tracer
	reg       *bpart.Metrics
	jsonl     *bpart.JSONLTracer
	traceFile *os.File
	probe     *bpart.ResourceProbe
	resFile   *os.File
	resPath   string
	metrics   bool
}

// instrument attaches everything the flags requested to one component:
// tracer + metrics, and the resource probe when -resources is set.
func (t *telemetryState) instrument(component any) {
	bpart.Instrument(component, t.tracer, t.reg)
	if t.probe != nil {
		bpart.InstrumentResources(component, t.probe)
	}
}

// setupTelemetry wires -trace, -metrics, -pprof and -resources. The
// registry exists whenever any of the first three is requested, so the
// pprof endpoint and the exit dump see the same counters.
func setupTelemetry(tracePath string, metrics bool, pprofAddr, resPath string) (*telemetryState, error) {
	t := &telemetryState{metrics: metrics, resPath: resPath}
	if tracePath != "" || metrics || pprofAddr != "" {
		t.reg = bpart.NewMetrics()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		t.traceFile = f
		t.jsonl = bpart.NewJSONLTrace(f)
		t.tracer = t.jsonl
	}
	if resPath != "" {
		f, err := os.Create(resPath)
		if err != nil {
			return nil, err
		}
		t.resFile = f
		t.probe = bpart.NewResourceProbe(f)
	}
	if pprofAddr != "" {
		ln := pprofAddr
		go func() {
			if err := http.ListenAndServe(ln, bpart.DebugMux(t.reg)); err != nil {
				fmt.Fprintln(os.Stderr, "bpart: pprof listener:", err)
			}
		}()
		fmt.Printf("diagnostics on http://%s/debug/pprof/ (also /metrics, /debug/vars)\n", ln)
	}
	return t, nil
}

// finish flushes the trace file and prints the metrics dump.
func (t *telemetryState) finish() {
	if t.jsonl != nil {
		if err := t.jsonl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bpart: trace flush:", err)
		}
		t.traceFile.Close()
	}
	if t.probe != nil {
		if err := t.probe.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bpart: resources flush:", err)
		}
		t.resFile.Close()
		fmt.Printf("resource log written to %s\n", t.resPath)
	}
	if t.metrics && t.reg != nil {
		fmt.Println("--- metrics ---")
		if err := t.reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bpart: metrics dump:", err)
		}
	}
}

// writeWalkTimeline runs the paper's 5|V|-walker, 4-step workload on the
// placement and dumps the per-machine, per-iteration timing as CSV. With a
// fault schedule, the walk runs under injection so the timeline shows the
// recovery barriers.
func writeWalkTimeline(path string, g *bpart.Graph, a *bpart.Assignment, faults *bpart.FaultSpec, k int, tel *telemetryState) error {
	eng, err := bpart.NewWalkEngine(g, a, bpart.DefaultCostModel())
	if err != nil {
		return err
	}
	tel.instrument(eng)
	var policy bpart.FaultPolicy
	if faults != nil {
		proj := faults.ForMachines(k)
		ctl, err := bpart.EnableFaults(eng, proj)
		if err != nil {
			return err
		}
		tel.instrument(ctl)
		policy = proj.Policy
	}
	res, err := eng.Run(bpart.WalkConfig{Kind: bpart.SimpleWalk, WalkersPerVertex: 5, Steps: 4, Seed: 1})
	if err != nil {
		return err
	}
	printRecovery("walk", policy, res.Recovery)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Stats.WriteTimeline(f); err != nil {
		return err
	}
	return f.Close()
}

func loadGraph(path, datasetID string, scale float64) (*bpart.Graph, error) {
	switch {
	case path != "" && datasetID != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return bpart.ReadGraphFile(path)
	case datasetID != "":
		return bpart.Preset(bpart.Dataset(datasetID), scale)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func run(g *bpart.Graph, scheme string, k int, tel *telemetryState) (bpart.Report, time.Duration, error) {
	p, err := bpart.NewScheme(scheme)
	if err != nil {
		return bpart.Report{}, 0, err
	}
	tel.instrument(p)
	start := time.Now()
	a, err := p.Partition(g, k)
	if err != nil {
		return bpart.Report{}, 0, err
	}
	dt := time.Since(start)
	r, err := bpart.Evaluate(g, a)
	return r, dt, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpart:", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bpart/internal/core"
	"bpart/internal/gen"
	"bpart/internal/partaudit"
)

// auditFile writes one audited BPart run to a temp file and returns its
// path plus an always-sampled vertex (stream position 0 of layer 1).
func auditFile(t *testing.T) (path string, sampledVertex int) {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 2000, AvgDegree: 10, Skew: 0.75, Locality: 0.5, Window: 64, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(t.TempDir(), "audit.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	aud, err := partaudit.New(f, partaudit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	b.SetAudit(aud)
	if _, err := b.Partition(g, 4); err != nil {
		t.Fatal(err)
	}
	if err := aud.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := partaudit.ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Decisions) == 0 {
		t.Fatal("audited run sampled no decisions")
	}
	return path, log.Decisions[0].Vertex
}

func TestSubcommands(t *testing.T) {
	path, vertex := auditFile(t)

	var out, errb bytes.Buffer
	if code := run([]string{"explain", strconv.Itoa(vertex), path}, &out, &errb); code != 0 {
		t.Fatalf("explain exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "<- chosen") {
		t.Fatalf("explain output lacks the chosen marker:\n%s", out.String())
	}

	out.Reset()
	htmlPath := filepath.Join(t.TempDir(), "timeline.html")
	if code := run([]string{"timeline", "-html", htmlPath, path}, &out, &errb); code != 0 {
		t.Fatalf("timeline exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cut_ratio") {
		t.Fatalf("timeline output lacks the window table:\n%s", out.String())
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(html, []byte("<svg")) || !bytes.Contains(html, []byte("</html>")) {
		t.Fatal("HTML timeline is not a complete page with a chart")
	}

	out.Reset()
	if code := run([]string{"combine", path}, &out, &errb); code != 0 {
		t.Fatalf("combine exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "FROZEN as part") {
		t.Fatalf("combine output lacks freeze outcomes:\n%s", out.String())
	}
}

func TestErrorPaths(t *testing.T) {
	path, _ := auditFile(t)
	var out, errb bytes.Buffer
	cases := []struct {
		args []string
		code int
	}{
		{nil, 2},                                    // no subcommand
		{[]string{"bogus"}, 2},                      // unknown subcommand
		{[]string{"explain", "7"}, 2},               // missing log path
		{[]string{"explain", "x", path}, 1},         // bad vertex ID
		{[]string{"timeline", "/no/such.jsonl"}, 1}, // unreadable log
		{[]string{"combine"}, 2},                    // missing log path
	}
	for _, tc := range cases {
		out.Reset()
		errb.Reset()
		if code := run(tc.args, &out, &errb); code != tc.code {
			t.Errorf("run(%q) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errb.String())
		}
	}
}

// A file that is not an audit log at all (every line garbage) must be a
// hard failure with a single-line diagnostic — not empty output with
// exit 0.
func TestCorruptLogFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.jsonl")
	if err := os.WriteFile(path, []byte("this is not an audit log\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"explain", "7", path},
		{"timeline", path},
		{"combine", path},
	} {
		out.Reset()
		errb.Reset()
		if code := run(args, &out, &errb); code != 1 {
			t.Errorf("run(%q) on garbage = %d, want 1", args, code)
		}
		diag := strings.TrimRight(errb.String(), "\n")
		if diag == "" || strings.Contains(diag, "\n") {
			t.Errorf("run(%q) diagnostic not a single line: %q", args, errb.String())
		}
		if !strings.Contains(diag, "line 1") {
			t.Errorf("run(%q) diagnostic does not locate the damage: %q", args, diag)
		}
	}
}

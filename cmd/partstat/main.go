// Command partstat analyzes the JSONL partition audit logs written by the
// decision audit layer (bpart -audit, bench -audit, or any program using
// an Auditor).
//
// Usage:
//
//	partstat explain <vertexID> audit.jsonl
//	partstat timeline [-html out.html] audit.jsonl
//	partstat combine audit.jsonl
//
// explain prints every sampled placement of one vertex: the per-piece
// score table (affinity − penalty = score, capacity skips), the chosen
// piece, the tie-break/fallback cause and the runner-up gap. timeline
// prints the streaming quality timeline (per-window vertex/edge bias and
// cut ratio, ending on the numbers Evaluate reports); -html additionally
// writes a self-contained chart. combine prints the combining audit tree:
// pairing rounds, freeze decisions and the predicted-vs-actual final
// balance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"bpart/internal/partaudit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage:
  partstat explain <vertexID> audit.jsonl
  partstat timeline [-html out.html] audit.jsonl
  partstat combine audit.jsonl`)
	return 2
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "explain":
		return cmdExplain(args[1:], stdout, stderr)
	case "timeline":
		return cmdTimeline(args[1:], stdout, stderr)
	case "combine":
		return cmdCombine(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "partstat: unknown subcommand %q\n", args[0])
		return usage(stderr)
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "partstat:", err)
	return 1
}

func cmdExplain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	vertex, err := strconv.Atoi(fs.Arg(0))
	if err != nil {
		return fail(stderr, fmt.Errorf("bad vertex ID %q: %w", fs.Arg(0), err))
	}
	log, err := partaudit.ReadLogFile(fs.Arg(1))
	if err != nil {
		return fail(stderr, err)
	}
	if err := partaudit.WriteExplain(stdout, log, vertex); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func cmdTimeline(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlPath := fs.String("html", "", "also write a self-contained HTML chart to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	log, err := partaudit.ReadLogFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if err := partaudit.WriteTimeline(stdout, log); err != nil {
		return fail(stderr, err)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := partaudit.WriteTimelineHTML(f, log); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlPath)
	}
	return 0
}

func cmdCombine(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("combine", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	log, err := partaudit.ReadLogFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if err := partaudit.WriteCombine(stdout, log); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// Package bpart is a Go implementation of BPart — the two-dimensional
// balanced graph partitioning scheme of "Towards Fast Large-scale Graph
// Analysis via Two-dimensional Balanced Partitioning" (ICPP 2022) —
// together with everything needed to reproduce the paper's evaluation:
// the baseline partitioners (Chunk-V, Chunk-E, Fennel, Hash, and an
// offline multilevel partitioner in the style of Mt-KaHIP), scale-free
// graph generators, a simulated BSP cluster, a Gemini-like iteration
// engine (PageRank, Connected Components, BFS) and a KnightKing-like
// random-walk engine (PPR, RWJ, RWD, DeepWalk, node2vec).
//
// This file is the public facade: thin aliases and constructors over the
// internal packages, so that examples and downstream users program against
// one import. The full benchmark harness behind EXPERIMENTS.md lives in
// RunExperiment/Experiments.
package bpart

import (
	"fmt"
	"io"
	"net/http"

	"bpart/internal/cluster"
	"bpart/internal/core"
	"bpart/internal/embed"
	"bpart/internal/engine"
	"bpart/internal/experiments"
	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/gio"
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/multilevel"
	"bpart/internal/partaudit"
	"bpart/internal/partition"
	"bpart/internal/resview"
	"bpart/internal/servestats"
	"bpart/internal/telemetry"
	"bpart/internal/vcut"
	"bpart/internal/walk"
)

// ---- graphs ----

// Graph is an immutable CSR directed graph.
type Graph = graph.Graph

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// Edge is a directed arc.
type Edge = graph.Edge

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// GraphStats summarizes a graph's degree structure.
type GraphStats = graph.Stats

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// FromAdjacency builds a graph from adjacency lists.
func FromAdjacency(adj [][]VertexID) *Graph { return graph.FromAdjacency(adj) }

// Stats computes degree statistics.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// ReadGraphFile loads a graph from disk (".bg" binary, else edge-list text).
func ReadGraphFile(path string) (*Graph, error) { return gio.ReadFile(path) }

// WriteGraphFile saves a graph to disk (format chosen by extension).
func WriteGraphFile(path string, g *Graph) error { return gio.WriteFile(path, g) }

// WriteAssignmentFile persists a partition assignment (text, one part per
// vertex) so a partition computed once in preprocessing can be reused by
// every later analytics job.
func WriteAssignmentFile(path string, a *Assignment) error {
	return gio.WriteAssignmentFile(path, a.Parts, a.K)
}

// ReadAssignmentFile loads a persisted partition assignment.
func ReadAssignmentFile(path string) (*Assignment, error) {
	parts, k, err := gio.ReadAssignmentFile(path)
	if err != nil {
		return nil, err
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// ---- generators ----

// GenConfig parameterizes the scale-free Chung–Lu generator.
type GenConfig = gen.Config

// Dataset names a synthetic stand-in for one of the paper's graphs.
type Dataset = gen.Dataset

// The synthetic stand-ins for the paper's Table 1 datasets.
const (
	LJSim         = gen.LJSim
	TwitterSim    = gen.TwitterSim
	FriendsterSim = gen.FriendsterSim
)

// Generate produces a scale-free graph from cfg.
func Generate(cfg GenConfig) (*Graph, error) { return gen.ChungLu(cfg) }

// Preset generates a named dataset at the given scale (1.0 = the default
// experiment size).
func Preset(d Dataset, scale float64) (*Graph, error) { return gen.Preset(d, scale) }

// Datasets lists the preset names.
func Datasets() []Dataset { return gen.Datasets() }

// ---- partitioning ----

// Assignment maps each vertex to a part.
type Assignment = partition.Assignment

// Partitioner is a named partitioning scheme.
type Partitioner = partition.Partitioner

// Config is BPart's configuration (weighting factor c, balance threshold ε,
// over-split factor, layer cap).
type Config = core.Config

// BPart is the two-dimensional balanced partitioner.
type BPart = core.BPart

// Trace records what each BPart layer did.
type Trace = core.Trace

// MultilevelConfig configures the Mt-KaHIP-style offline baseline.
type MultilevelConfig = multilevel.Config

// DefaultConfig returns the paper's default BPart configuration.
func DefaultConfig() Config { return core.Default() }

// New returns a BPart partitioner; the zero Config selects the defaults.
func New(cfg Config) (*BPart, error) { return core.New(cfg) }

// NewMultilevel returns the offline multilevel baseline.
func NewMultilevel(cfg MultilevelConfig) (Partitioner, error) { return multilevel.New(cfg) }

// Schemes lists every registered partitioning scheme ("BPart", "Chunk-V",
// "Chunk-E", "Fennel", "Hash", "Multilevel").
func Schemes() []string { return partition.Names() }

// Partition splits g into k parts using the named scheme.
func Partition(g *Graph, scheme string, k int) (*Assignment, error) {
	p, err := partition.Get(scheme)
	if err != nil {
		return nil, err
	}
	return p.Partition(g, k)
}

// NewScheme returns a fresh instance of the named partitioning scheme, so
// that a caller can Instrument it before partitioning.
func NewScheme(scheme string) (Partitioner, error) { return partition.Get(scheme) }

// ---- telemetry ----

// Tracer receives structured span/event records from instrumented
// components. Use NewJSONLTrace for a persistent trace, NewMemoryTrace for
// tests, NopTrace to disable.
type Tracer = telemetry.Tracer

// TraceRecord is one finished span or event.
type TraceRecord = telemetry.Record

// Metrics is a named counter/gauge registry with a Prometheus-style text
// exporter and an expvar-compatible snapshot.
type Metrics = telemetry.Registry

// MemoryTracer buffers records in memory (tests, ad-hoc inspection).
type MemoryTracer = telemetry.Memory

// JSONLTracer streams records as JSON lines to a writer.
type JSONLTracer = telemetry.JSONL

// TraceAttr is one key/value annotation on a span or event.
type TraceAttr = telemetry.Attr

// TraceString makes a string-valued annotation.
func TraceString(key, v string) TraceAttr { return telemetry.String(key, v) }

// TraceInt makes an integer-valued annotation.
func TraceInt(key string, v int) TraceAttr { return telemetry.Int(key, v) }

// TraceFloat makes a float-valued annotation.
func TraceFloat(key string, v float64) TraceAttr { return telemetry.Float(key, v) }

// NopTrace returns the no-op tracer (the default on every component).
func NopTrace() Tracer { return telemetry.Nop() }

// NewMemoryTrace returns a tracer that buffers records in memory.
func NewMemoryTrace() *MemoryTracer { return telemetry.NewMemory() }

// NewJSONLTrace returns a tracer that appends one JSON line per record to
// w. Call Flush (or Close) when done.
func NewJSONLTrace(w io.Writer) *JSONLTracer { return telemetry.NewJSONL(w) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// Instrument attaches a tracer and metrics registry to any component that
// supports telemetry (BPart, IterationEngine, WalkEngine, and the scheme
// instances returned by NewScheme when they are BPart). It reports whether
// the component accepted the instrumentation.
func Instrument(component any, tr Tracer, m *Metrics) bool {
	in, ok := component.(telemetry.Instrumentable)
	if !ok {
		return false
	}
	in.SetTelemetry(tr, m)
	return true
}

// DebugMux returns an http.ServeMux serving /debug/pprof/* profiles,
// /metrics (Prometheus text) and /debug/vars (expvar JSON) for the given
// registry — mount it behind a diagnostics listener.
func DebugMux(m *Metrics) *http.ServeMux { return telemetry.DebugMux(m) }

// ---- partition decision audit ----

// AuditConfig tunes the partition decision audit: decision sampling rate,
// hub always-sample count, timeline window size and flush cadence. The
// zero value selects the defaults.
type AuditConfig = partaudit.Config

// Auditor writes the JSONL audit log of one partitioning run: sampled
// placement decisions with their full score decomposition, windowed
// quality snapshots, and the combining audit tree. A nil *Auditor is a
// valid no-op sink everywhere.
type Auditor = partaudit.Auditor

// AuditLog is a parsed audit log (see ReadAuditLog).
type AuditLog = partaudit.Log

// NewAuditor returns an Auditor writing JSON lines to w. Call Flush (or
// Close) when done; it surfaces the first write error.
func NewAuditor(w io.Writer, cfg AuditConfig) (*Auditor, error) { return partaudit.New(w, cfg) }

// Audit attaches an audit sink to any partitioner that supports decision
// auditing (BPart, and the Fennel/LDG instances returned by NewScheme).
// It reports whether the component accepted the sink; a nil Auditor
// detaches. Auditing is pure observation: an audited run's assignment is
// identical to an unaudited one.
func Audit(component any, a *Auditor) bool {
	s, ok := component.(partaudit.Auditable)
	if !ok {
		return false
	}
	s.SetAudit(a)
	return true
}

// ReadAuditLog parses a JSONL audit log. A torn final line (crashed run)
// is tolerated and flagged via AuditLog.Truncated; interior damage is a
// hard error.
func ReadAuditLog(r io.Reader) (*AuditLog, error) { return partaudit.ReadLog(r) }

// ---- runtime resource observability ----

// PhaseProbe receives resource phase hooks (begin/end spans around named
// phases, laps at iteration boundaries) from instrumented components. The
// concrete capture is ResourceProbe; components hold only this interface.
type PhaseProbe = telemetry.PhaseProbe

// PhaseEnd closes one PhaseProbe.BeginPhase observation.
type PhaseEnd = telemetry.PhaseEnd

// ResourceProbe captures wall-clock self-time, allocation/GC deltas and
// goroutine counts around named phases and writes one versioned JSONL
// `resource` record per phase. A nil *ResourceProbe is a valid no-op.
type ResourceProbe = resview.Probe

// ResourceLog is a parsed resource log (see ReadResourceLog).
type ResourceLog = resview.Log

// ResourceRecord is one parsed resource record.
type ResourceRecord = resview.Record

// NopResourceProbe returns the no-op phase probe — the zero-cost default
// behind every hook site, and the baseline for the probe-overhead gates.
func NopResourceProbe() PhaseProbe { return telemetry.NopProbe() }

// NewResourceProbe returns a probe writing resource records to w. Call
// Close (or Flush) when done; it surfaces the first write error. Probing
// is pure observation: a probed run's deterministic artifacts are
// byte-identical to an unprobed run's.
func NewResourceProbe(w io.Writer) *ResourceProbe { return resview.NewProbe(w) }

// InstrumentResources attaches a resource probe to any component that
// supports resource phases (BPart, IterationEngine, WalkEngine). It
// reports whether the component accepted the probe; nil detaches.
func InstrumentResources(component any, p PhaseProbe) bool {
	pr, ok := component.(telemetry.Probeable)
	if !ok {
		return false
	}
	pr.SetResourceProbe(p)
	return true
}

// ReadResourceLog parses a JSONL resource log. A torn final line (crashed
// run) is tolerated and flagged via ResourceLog.Truncated; interior damage
// is a hard error.
func ReadResourceLog(r io.Reader) (*ResourceLog, error) { return resview.Read(r) }

// ReadResourceLogFile parses the JSONL resource log at path.
func ReadResourceLogFile(path string) (*ResourceLog, error) { return resview.ReadFile(path) }

// ---- serving-layer observability ----

// ServingBackend answers placement lookups, bounded k-hop neighborhood
// queries and seeded random walks over a graph + assignment, with
// versioned atomic assignment hot-swap (see cmd/bpartd).
type ServingBackend = servestats.Backend

// ServingRecorder captures per-endpoint and per-part request-latency
// histograms, windowed percentile snapshots, and the versioned JSONL
// request log. A nil *ServingRecorder is a valid no-op everywhere.
type ServingRecorder = servestats.Recorder

// ServingServer mounts the serving endpoints (/v1/lookup, /v1/khop,
// /v1/walk, /v1/swapz, /v1/statz) over a backend and optional recorder.
type ServingServer = servestats.Server

// ServingWorkload is a reproducible seeded Zipf request stream (see
// cmd/loadgen).
type ServingWorkload = servestats.Workload

// ServingLog is a parsed request log (see ReadRequestLog).
type ServingLog = servestats.Log

// ServingReport digests a request log: per-endpoint and per-part
// percentiles plus the assignment-version census.
type ServingReport = servestats.Report

// ServingAttribution is one part's row in the tail-attribution report.
type ServingAttribution = servestats.Attribution

// NewServingBackend builds a serving backend over g with the given
// assignment (version 1).
func NewServingBackend(g *Graph, parts []int, k int) (*ServingBackend, error) {
	return servestats.NewBackend(g, parts, k)
}

// NewServingRecorder returns a recorder for k parts. logSink receives one
// JSON line per request (nil disables the log); m receives the serving
// counters and the aggregate latency histogram (nil disables them). Call
// Close (or Flush) when done; it surfaces the first write error.
func NewServingRecorder(k int, logSink io.Writer, m *Metrics) *ServingRecorder {
	return servestats.NewRecorder(k, logSink, m)
}

// ReadRequestLog parses a JSONL serving request log. A torn final line
// (crashed server) is tolerated and flagged via ServingLog.Truncated;
// interior damage is a hard error.
func ReadRequestLog(r io.Reader) (*ServingLog, error) { return servestats.Read(r) }

// ReadRequestLogFile parses the JSONL request log at path.
func ReadRequestLogFile(path string) (*ServingLog, error) { return servestats.ReadFile(path) }

// SummarizeServing digests a request log into the percentile report
// `tracestat serve` prints.
func SummarizeServing(l *ServingLog) *ServingReport { return servestats.Summarize(l) }

// AttributeServing reconciles one assignment version's routed requests
// against the assignment exactly and returns the per-part tail
// attribution; any disagreement between the log and parts is an error.
func AttributeServing(l *ServingLog, parts []int, k, version int) ([]ServingAttribution, error) {
	return servestats.Attribute(l, parts, k, version)
}

// ---- vertex-cut partitioning (the §5 alternative family) ----

// EdgeAssignment maps every arc to a part; vertices whose arcs span parts
// are replicated.
type EdgeAssignment = vcut.EdgeAssignment

// VertexCutPartitioner is a vertex-cut (edge-assignment) scheme.
type VertexCutPartitioner = vcut.Partitioner

// VertexCutReport summarizes a vertex-cut partitioning: per-part edge
// counts and the replication factor.
type VertexCutReport = vcut.Report

// Vertex-cut schemes. All constructors return pointers so Instrument can
// attach telemetry (SetTelemetry has a pointer receiver).
var (
	// NewRandomEdgeCut hashes each edge to a part.
	NewRandomEdgeCut = func() VertexCutPartitioner { return &vcut.RandomEdge{} }
	// NewDBH hashes each edge on its lower-degree endpoint.
	NewDBH = func() VertexCutPartitioner { return &vcut.DBH{} }
	// NewGreedyCut is PowerGraph's streaming placement.
	NewGreedyCut = func() VertexCutPartitioner { return &vcut.Greedy{} }
	// NewHDRF is High-Degree Replicated First.
	NewHDRF = func() VertexCutPartitioner { return &vcut.HDRF{} }
)

// EvaluateVertexCut computes the quality report of an edge assignment.
func EvaluateVertexCut(g *Graph, a *EdgeAssignment) (VertexCutReport, error) {
	if err := a.Validate(g); err != nil {
		return VertexCutReport{}, err
	}
	return vcut.NewReport(g, a), nil
}

// ---- quality metrics ----

// Report summarizes partition quality: per-dimension balance (bias and
// Jain's fairness) and the edge-cut ratio.
type Report = metrics.Report

// Evaluate computes the quality Report of an assignment.
func Evaluate(g *Graph, a *Assignment) (Report, error) {
	if err := a.Validate(g); err != nil {
		return Report{}, err
	}
	return metrics.NewReport(g, a.Parts, a.K, false), nil
}

// ---- simulated distributed execution ----

// CostModel holds the simulated cluster's unit costs.
type CostModel = cluster.CostModel

// RunStats aggregates per-iteration BSP timing.
type RunStats = cluster.RunStats

// DefaultCostModel approximates the paper's testbed ratios.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// IterationEngine is the Gemini-like vertex-centric BSP engine.
type IterationEngine = engine.Engine

// PageRankResult is the outcome of a PageRank run.
type PageRankResult = engine.PRResult

// ComponentsResult is the outcome of a Connected Components run.
type ComponentsResult = engine.CCResult

// BFSResult is the outcome of a BFS run.
type BFSResult = engine.BFSResult

// SSSPResult is the outcome of a single-source shortest paths run.
type SSSPResult = engine.SSSPResult

// KCoreResult is the outcome of a k-core decomposition run.
type KCoreResult = engine.KCoreResult

// NewIterationEngine places g on a simulated cluster per the assignment.
func NewIterationEngine(g *Graph, a *Assignment, model CostModel) (*IterationEngine, error) {
	if err := a.Validate(g); err != nil {
		return nil, err
	}
	return engine.New(g, a.Parts, a.K, model)
}

// ---- fault injection, checkpointing and recovery ----

// FaultSpec is a complete, replayable fault schedule: crashes, transient
// slowdowns and lost message batches at chosen supersteps, plus the
// checkpoint interval and crash recovery policy. Specs serialize to JSON
// (ReadFaultSpecFile / WriteJSON) so a failure scenario is a versioned
// artifact.
type FaultSpec = fault.Spec

// FaultEvent is one scheduled fault in a FaultSpec.
type FaultEvent = fault.Event

// FaultPolicy selects how a run recovers from a crash.
type FaultPolicy = fault.Policy

// FaultRandomConfig parameterizes RandomFaultSpec.
type FaultRandomConfig = fault.RandomConfig

// FaultController drives one engine's checkpoints, disruptions and
// recovery for a FaultSpec. Obtain one with EnableFaults; it accepts
// Instrument for fault.* trace events and fault_* counters.
type FaultController = fault.Controller

// RecoveryStats summarizes what fault handling cost a run; engines attach
// it to their results (PageRankResult.Recovery, WalkResult.Recovery, ...).
type RecoveryStats = fault.RecoveryStats

// Crash recovery policies.
const (
	// RollbackPolicy reloads the last checkpoint everywhere and replays.
	RollbackPolicy = fault.Rollback
	// RestreamPolicy permanently retires the crashed machine, restreams
	// its vertices onto the survivors (prioritized Fennel restreaming)
	// and replays in degraded mode.
	RestreamPolicy = fault.Restream
)

// Fault event kinds.
const (
	CrashFault   = fault.Crash
	SlowFault    = fault.Slow
	MsgLossFault = fault.MsgLoss
)

// ReadFaultSpec parses and normalizes a JSON fault schedule.
func ReadFaultSpec(r io.Reader) (*FaultSpec, error) { return fault.ReadSpec(r) }

// ReadFaultSpecFile reads a fault schedule from path.
func ReadFaultSpecFile(path string) (*FaultSpec, error) { return fault.ReadSpecFile(path) }

// RandomFaultSpec draws a replayable schedule: the same config always
// yields the same spec.
func RandomFaultSpec(cfg FaultRandomConfig) (*FaultSpec, error) { return fault.RandomSpec(cfg) }

// EnableFaults attaches a fault schedule to an engine that supports
// injection (IterationEngine, WalkEngine) and returns the controller so
// the caller can Instrument it or inspect the normalized spec. Pass each
// engine its own controller; a controller is bound to its engine's
// simulated cluster.
func EnableFaults(component any, spec *FaultSpec) (*FaultController, error) {
	switch e := component.(type) {
	case *IterationEngine:
		ctl, err := fault.NewController(e.Graph(), e.Cluster(), spec)
		if err != nil {
			return nil, err
		}
		if err := e.SetFaults(ctl); err != nil {
			return nil, err
		}
		return ctl, nil
	case *WalkEngine:
		ctl, err := fault.NewController(e.Graph(), e.Cluster(), spec)
		if err != nil {
			return nil, err
		}
		if err := e.SetFaults(ctl); err != nil {
			return nil, err
		}
		return ctl, nil
	default:
		return nil, fmt.Errorf("bpart: %T does not support fault injection (IterationEngine and WalkEngine do)", component)
	}
}

// WalkEngine is the KnightKing-like random-walk engine.
type WalkEngine = walk.Engine

// WalkConfig selects the walk application and its parameters.
type WalkConfig = walk.Config

// WalkResult is the outcome of a walk run.
type WalkResult = walk.Result

// WalkKind selects the walk application.
type WalkKind = walk.Kind

// The paper's five random-walk applications plus plain random walks and
// KnightKing-style static-weight biased walks.
const (
	SimpleWalk = walk.Simple
	PPR        = walk.PPR
	RWJ        = walk.RWJ
	RWD        = walk.RWD
	DeepWalk   = walk.DeepWalk
	Node2Vec   = walk.Node2Vec
	BiasedWalk = walk.BiasedWalk
)

// NewWalkEngine places g on a simulated cluster per the assignment.
func NewWalkEngine(g *Graph, a *Assignment, model CostModel) (*WalkEngine, error) {
	if err := a.Validate(g); err != nil {
		return nil, err
	}
	return walk.New(g, a.Parts, a.K, model)
}

// ---- vertex embeddings (the walks' downstream consumer) ----

// EmbedConfig holds skip-gram/negative-sampling hyperparameters.
type EmbedConfig = embed.Config

// Embeddings holds trained vertex vectors.
type Embeddings = embed.Embeddings

// TrainEmbeddings learns vertex embeddings from a walk corpus
// (WalkConfig.CollectPaths) — DeepWalk/node2vec end to end.
func TrainEmbeddings(corpus [][]VertexID, numVertices int, cfg EmbedConfig) (*Embeddings, error) {
	return embed.Train(corpus, numVertices, cfg)
}

// ---- experiment harness ----

// ExperimentOptions configures a reproduction run.
type ExperimentOptions = experiments.Options

// ExperimentTable is a reproduced table or figure.
type ExperimentTable = experiments.Table

// Experiments lists the IDs of every reproducible table and figure.
func Experiments() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// BenchArtifact is the machine-readable benchmark record cmd/bench writes
// as BENCH_bpart.json (schema documented in EXPERIMENTS.md).
type BenchArtifact = experiments.BenchArtifact

// NewBenchArtifact starts a benchmark artifact for one bench invocation.
func NewBenchArtifact(opt ExperimentOptions) *BenchArtifact {
	return experiments.NewBenchArtifact(opt)
}

// ReadBenchArtifact parses a BENCH_bpart.json file.
func ReadBenchArtifact(r io.Reader) (*BenchArtifact, error) {
	return experiments.ReadBenchArtifact(r)
}

// RunExperiment regenerates one table or figure by ID (see Experiments).
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	for _, e := range experiments.All() {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	return nil, fmt.Errorf("bpart: unknown experiment %q (have %v)", id, Experiments())
}
